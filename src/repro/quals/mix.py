"""Mix rules instantiated for the sign-qualifier checker.

This is the paper's §2 sign example made executable.  The interface
between the analyses is one notch richer than plain MIX: alongside each
variable's type, a *sign* crosses the boundary.

- **typed -> symbolic** (TSymBlock analog): a variable of type
  ``pos int`` becomes a fresh α with the side constraint ``α > 0``
  (similarly ``neg``/``zero``); ``unknown int`` is unconstrained.
- **symbolic -> typed** (SETypBlock analog): entering a typed block,
  each integer's sign is computed from the path condition with solver
  validity queries — "since the value of x is constrained in the
  symbolic execution, the type system will start with the appropriate
  type for x, either pos, zero, or neg int".

The client property (division-by-zero freedom) then demonstrates the
paper's headline: the pure checker rejects ``if x = 0 then 1 else
10 / x`` (path-insensitive), the mixed analysis accepts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro import smt
from repro.core.config import MixConfig, SoundnessMode
from repro.lang.ast import Expr, SymBlock, TypedBlock
from repro.lang.parser import parse
from repro.quals import signs
from repro.quals.checker import QType, QualTypeError, SignChecker, SignEnv, int_q
from repro.quals.signs import Sign
from repro.symexec.executor import ErrKind, Outcome, State, SymExecutor
from repro.symexec.memory import fresh_memory, memory_ok
from repro.symexec.values import (
    NameSupply,
    SymEnv,
    SymValue,
    UnknownFun,
    fresh_of_type,
)
from repro.typecheck.types import FunType, INT, Type


@dataclass
class SignReport:
    ok: bool
    qtype: Optional[QType] = None
    diagnostics: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        if self.ok:
            return f"accepted: {self.qtype}"
        return "rejected: " + "; ".join(self.diagnostics)


class SignMix:
    """The mixed sign analysis."""

    def __init__(self, config: Optional[MixConfig] = None) -> None:
        self.config = config or MixConfig()
        self.names = NameSupply()
        self.checker = SignChecker(symbolic_block_hook=self._type_symbolic_block)
        self.executor = SymExecutor(
            config=self.config.sym,
            names=self.names,
            typed_block_hook=self._exec_typed_block,
        )
        self.stats = {"sign_queries": 0, "symbolic_blocks": 0, "typed_blocks": 0}

    @property
    def solver_stats(self) -> "smt.SolverStats":
        """Counters of the shared solver service (queries, cache tiers)."""
        return smt.get_service().stats

    # ------------------------------------------------------------------
    # Sign <-> constraint translation
    # ------------------------------------------------------------------

    def sign_constraint(self, term: smt.Term, sign: Sign) -> Optional[smt.Term]:
        zero = smt.int_const(0)
        if sign is Sign.POS:
            return smt.gt(term, zero)
        if sign is Sign.NEG:
            return smt.lt(term, zero)
        if sign is Sign.ZERO:
            return smt.eq(term, zero)
        return None

    def classify(self, term: smt.Term, assumptions: list[smt.Term]) -> Sign:
        """The strongest sign valid under the assumptions."""
        self.stats["sign_queries"] += 1
        zero = smt.int_const(0)
        for sign, formula in (
            (Sign.POS, smt.gt(term, zero)),
            (Sign.NEG, smt.lt(term, zero)),
            (Sign.ZERO, smt.eq(term, zero)),
        ):
            try:
                if smt.is_valid(formula, assuming=assumptions):
                    return sign
            except smt.SolverError:
                continue
        return Sign.UNKNOWN

    # ------------------------------------------------------------------
    # TSymBlock analog
    # ------------------------------------------------------------------

    def _type_symbolic_block(self, gamma: SignEnv, block: SymBlock) -> QType:
        self.stats["symbolic_blocks"] += 1
        bindings: dict[str, SymValue] = {}
        env_constraints: list[smt.Term] = []
        for name, qt in gamma.items():
            value, constraints = fresh_of_type(qt.typ, self.names)
            bindings[name] = value
            env_constraints.extend(constraints)
            if qt.sign is not None and value.term is not None:
                constraint = self.sign_constraint(value.term, qt.sign)
                if constraint is not None:
                    env_constraints.append(constraint)
        state = State(smt.true(), fresh_memory(self.names), tuple(env_constraints))
        outcomes = list(self.executor.execute(block.body, SymEnv(bindings), state))
        surviving: list[Outcome] = []
        for out in outcomes:
            if out.ok:
                surviving.append(out)
                continue
            if out.kind is ErrKind.LOOP_BOUND and (
                self.config.soundness is SoundnessMode.GOOD_ENOUGH
            ):
                continue
            if self._feasible(out.state):
                raise QualTypeError(
                    f"symbolic execution failed: {out.error}", out.pos or block.pos  # type: ignore[arg-type]
                )
        if not surviving:
            raise QualTypeError("symbolic block has no feasible path", block.pos)
        result_type: Optional[Type] = None
        result_sign: Optional[Sign] = None
        for out in surviving:
            assert out.value is not None
            if out.value.term is None:
                raise QualTypeError(
                    "a function value escapes the symbolic block", block.pos
                )
            if result_type is None:
                result_type = out.value.typ
            elif result_type != out.value.typ:
                raise QualTypeError(
                    f"paths disagree on the result type: {result_type} vs "
                    f"{out.value.typ}",
                    block.pos,
                )
            if not memory_ok(out.state.memory, out.state.condition()):
                raise QualTypeError(
                    "symbolic block leaves memory inconsistently typed", block.pos
                )
            if out.value.typ == INT:
                path_sign = self.classify(
                    out.value.term, [out.state.guard, *out.state.defs]
                )
                result_sign = (
                    path_sign
                    if result_sign is None
                    else signs.join(result_sign, path_sign)
                )
        if self.config.soundness is SoundnessMode.SOUND:
            self._check_exhaustive(surviving, block)
        assert result_type is not None
        return int_q(result_sign or Sign.UNKNOWN) if result_type == INT else QType(result_type)

    def _check_exhaustive(self, outcomes: list[Outcome], block: SymBlock) -> None:
        guards = [o.state.guard for o in outcomes]
        assumptions: list[smt.Term] = []
        for out in outcomes:
            for d in out.state.defs:
                if d not in assumptions:
                    assumptions.append(d)
        try:
            exhaustive = smt.is_valid(smt.or_(*guards), assuming=assumptions)
        except smt.SolverError:
            exhaustive = False
        if not exhaustive:
            raise QualTypeError(
                "the explored paths are not exhaustive", block.pos
            )

    def _feasible(self, state: State) -> bool:
        try:
            return smt.is_satisfiable(state.condition())
        except smt.SolverError:
            return True

    # ------------------------------------------------------------------
    # SETypBlock analog
    # ------------------------------------------------------------------

    def _exec_typed_block(
        self, sigma: SymEnv, state: State, block: TypedBlock
    ) -> Iterator[Outcome]:
        self.stats["typed_blocks"] += 1
        if not memory_ok(state.memory, state.condition()):
            yield Outcome(
                state,
                error="entering a typed block with inconsistent memory",
                kind=ErrKind.TYPE_ERROR,
                pos=block.pos,
            )
            return
        # ⊢ Σ : Γ, refined: integer signs are read off the path condition.
        assumptions = [state.guard, *state.defs]
        gamma = SignEnv()
        for name, value in sigma.items():
            if isinstance(value.typ, FunType):
                if isinstance(value.fun, UnknownFun):
                    gamma = gamma.extend(name, QType(value.typ))
                continue  # latent closures are omitted, as in plain MIX
            if value.typ == INT:
                assert value.term is not None
                gamma = gamma.extend(
                    name, int_q(self.classify(value.term, assumptions))
                )
            else:
                gamma = gamma.extend(name, QType(value.typ))
        try:
            block_qt = self.checker.check(block.body, gamma)
        except QualTypeError as error:
            yield Outcome(
                state,
                error=f"sign-type error in typed block: {error.message}",
                kind=ErrKind.TYPE_ERROR,
                pos=error.pos or block.pos,
            )
            return
        result, constraints = fresh_of_type(block_qt.typ, self.names)
        extra: list[smt.Term] = list(constraints)
        if block_qt.sign is not None and result.term is not None:
            # The block's sign survives the boundary as a constraint on α.
            sign_c = self.sign_constraint(result.term, block_qt.sign)
            if sign_c is not None:
                extra.append(sign_c)
        new_state = state.with_memory(fresh_memory(self.names)).add_defs(*extra)
        yield Outcome(new_state, value=result)


def analyze_signs(
    program: Union[str, Expr],
    env: Optional[SignEnv] = None,
    entry: str = "typed",
    config: Optional[MixConfig] = None,
) -> SignReport:
    """Run the mixed sign analysis over a program or source text."""
    if isinstance(program, str):
        program = parse(program)
    mix = SignMix(config=config)
    env = env or SignEnv()
    if entry == "symbolic":
        program = SymBlock(program, pos=getattr(program, "pos", None))
        try:
            qt = mix._type_symbolic_block(env, program)
        except QualTypeError as error:
            return SignReport(False, diagnostics=[str(error)])
        return SignReport(True, qt)
    if entry != "typed":
        raise ValueError(f"entry must be 'typed' or 'symbolic', got {entry!r}")
    try:
        qt = mix.checker.check(program, env)
    except QualTypeError as error:
        return SignReport(False, diagnostics=[str(error)])
    return SignReport(True, qt)
