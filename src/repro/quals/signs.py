"""The sign qualifier lattice and its arithmetic transfer functions.

The lattice is the flat one from the paper's example::

            unknown
           /   |   \\
        neg   zero   pos

with ``join`` moving up and abstract arithmetic defined pointwise.
"""

from __future__ import annotations

from enum import Enum, unique


@unique
class Sign(Enum):
    POS = "pos"
    NEG = "neg"
    ZERO = "zero"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value

    @property
    def excludes_zero(self) -> bool:
        return self in (Sign.POS, Sign.NEG)


def sign_of_int(value: int) -> Sign:
    if value > 0:
        return Sign.POS
    if value < 0:
        return Sign.NEG
    return Sign.ZERO


def join(a: Sign, b: Sign) -> Sign:
    """Least upper bound in the flat lattice."""
    return a if a is b else Sign.UNKNOWN


def add(a: Sign, b: Sign) -> Sign:
    if a is Sign.ZERO:
        return b
    if b is Sign.ZERO:
        return a
    if a is b and a in (Sign.POS, Sign.NEG):
        return a
    return Sign.UNKNOWN


def negate(a: Sign) -> Sign:
    if a is Sign.POS:
        return Sign.NEG
    if a is Sign.NEG:
        return Sign.POS
    return a  # zero and unknown are fixed points


def sub(a: Sign, b: Sign) -> Sign:
    return add(a, negate(b))


def mul(a: Sign, b: Sign) -> Sign:
    if Sign.ZERO in (a, b):
        return Sign.ZERO
    if Sign.UNKNOWN in (a, b):
        return Sign.UNKNOWN
    return Sign.POS if a is b else Sign.NEG


def div(a: Sign, b: Sign) -> Sign:
    """Abstract truncating division, assuming the divisor is nonzero.

    Truncation can collapse magnitude-1 quotients to zero (e.g. 1/2 = 0),
    so any inexact case widens to unknown; only zero dividends stay zero.
    """
    if a is Sign.ZERO:
        return Sign.ZERO
    return Sign.UNKNOWN
