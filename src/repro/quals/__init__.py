"""Sign qualifiers: the paper's second example of a non-standard type
system profiting from MIX (§2, "Local Refinements of Data").

"As one example, suppose we introduce a type qualifier system that
distinguishes the sign of an integer as either positive, negative, zero,
or unknown.  Then we can use symbolic execution to refine the type of an
integer after a test."

This package implements that system for the MIX source language:

- :mod:`repro.quals.signs` -- the sign lattice and transfer functions;
- :mod:`repro.quals.checker` -- a qualifier-refined type checker whose
  client property is *division-by-zero freedom*: ``e1 / e2`` checks only
  when the divisor's sign excludes zero;
- :mod:`repro.quals.mix` -- the mix rules instantiated for this checker:
  entering a typed block, each integer's sign is *refined from the path
  condition* with solver validity queries; a symbolic block started from
  a sign-qualified environment receives the matching constraints.
"""

from repro.quals.signs import Sign, sign_of_int
from repro.quals.checker import QualTypeError, SignChecker, SignEnv
from repro.quals.mix import SignMix, analyze_signs

__all__ = [
    "QualTypeError",
    "Sign",
    "SignChecker",
    "SignEnv",
    "SignMix",
    "analyze_signs",
    "sign_of_int",
]
