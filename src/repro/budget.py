"""The resource governor: per-run budgets with graceful degradation.

The structural budgets that already exist in the tower (loop unroll,
``max_call_depth``, ``lazy_budget``, ``int_budget``) bound the *shape* of
an exploration but not its *cost*: a single hard solver query or an
exponential frontier can still run away with the process.  A
:class:`Budget` adds the wall-clock and cardinality limits that
production symbolic-execution engines treat as table stakes (Baldoni et
al., *A Survey of Symbolic Execution Techniques*):

- ``deadline`` — wall-clock seconds for the whole analysis run;
- ``query_timeout`` — wall-clock seconds any single solver query may
  take (additionally capped by the run deadline);
- ``max_paths`` — total execution paths across the run;
- ``max_memlog_depth`` — longest write log a single symbolic state may
  accumulate (the ``⊢ m ok`` walk is linear in it).

One ``Budget`` instance is shared by every layer of a run: the MIX/MIXY
driver installs it into the process-wide
:class:`repro.smt.service.SolverService` (which derives a per-query
deadline from it) and hands it to the executors (which charge paths and
check the deadline at forks and loop unrolls).

Degradation is *sound by construction*, never ad hoc: a breach can only
ever make the analysis answer "I don't know" — a timed-out query
becomes ``UNKNOWN`` (never cached), an abandoned frontier becomes a
single ``BUDGET`` error outcome the mix rules treat conservatively, and
the MIXY driver falls back to pure qualifier inference for the offending
block.  No budget can flip a verdict from "error" to "no error".

The clock is :func:`time.monotonic` throughout; it starts lazily at the
first deadline question (or explicitly via :meth:`Budget.start`), so a
``Budget`` can be built at CLI-parse time without eating into the run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Budget:
    """Wall-clock and cardinality limits for one analysis run.

    All limits are optional; ``None`` means unbounded, and a default
    ``Budget()`` governs nothing.  The instance is mutable runtime
    state: it owns the start timestamp and the running path count.
    """

    #: Wall-clock seconds for the whole run (``--deadline``).
    deadline: Optional[float] = None
    #: Wall-clock seconds per solver query (``--query-timeout-ms``).
    query_timeout: Optional[float] = None
    #: Total execution paths across the run (``--max-paths``).
    max_paths: Optional[int] = None
    #: Deepest write log a single symbolic state may accumulate.
    max_memlog_depth: Optional[int] = None

    #: Paths charged so far (across every block of the run).
    paths_used: int = field(default=0, init=False, repr=False)
    _started: Optional[float] = field(default=None, init=False, repr=False)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_request(
        cls, options: dict, request_deadline: Optional[float] = None
    ) -> Optional["Budget"]:
        """Build the budget for one daemon request: the client-supplied
        limits from the analyze ``options`` payload, with the daemon's
        ``--request-deadline`` folded in as an *additional* wall-clock
        cap (the tighter of the two wins — a client cannot opt out of
        the server's limit by sending a looser one).  Returns ``None``
        when nothing is bounded, so unbudgeted requests keep the exact
        one-shot semantics (including block-memo eligibility)."""
        deadline = options.get("deadline")
        if request_deadline is not None:
            deadline = (
                request_deadline
                if deadline is None
                else min(deadline, request_deadline)
            )
        query_timeout_ms = options.get("query_timeout_ms")
        max_paths = options.get("max_paths")
        if deadline is None and query_timeout_ms is None and max_paths is None:
            return None
        return cls(
            deadline=deadline,
            query_timeout=(
                None if query_timeout_ms is None else query_timeout_ms / 1000.0
            ),
            max_paths=max_paths,
        )

    @staticmethod
    def slot_kill_after(
        options: dict,
        request_deadline: Optional[float],
        grace: float,
    ) -> Optional[float]:
        """Seconds until an unresponsive worker slot may be SIGKILLed:
        the tighter of the client-supplied ``deadline`` option and the
        daemon's ``--request-deadline``, plus ``grace`` for the budget
        machinery to wind down and the reply frame to be written.  None
        when the request is unbounded — mirrors :meth:`from_request`, so
        the kill deadline and the in-band budget can never disagree on
        which limit governs."""
        limits = [
            value
            for value in (options.get("deadline"), request_deadline)
            if isinstance(value, (int, float)) and value > 0
        ]
        if not limits:
            return None
        return min(limits) + grace

    # -- clock -----------------------------------------------------------------

    def start(self) -> "Budget":
        """Arm the clock (idempotent: the first call wins)."""
        if self._started is None:
            self._started = time.monotonic()
        return self

    def restart(self) -> "Budget":
        """Re-arm the clock and reset the path count (fresh run)."""
        self._started = time.monotonic()
        self.paths_used = 0
        return self

    def deadline_at(self) -> Optional[float]:
        """Absolute :func:`time.monotonic` instant the run must stop at."""
        if self.deadline is None:
            return None
        return self.start()._started + self.deadline  # type: ignore[operator]

    def remaining(self) -> Optional[float]:
        """Seconds left before the run deadline (None = unbounded)."""
        at = self.deadline_at()
        return None if at is None else at - time.monotonic()

    def expired(self) -> bool:
        """True iff the run deadline has passed."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def query_deadline_at(self) -> Optional[float]:
        """Absolute instant the *next solver query* must stop at.

        The tighter of "query_timeout from now" and the run deadline, so
        a query started near the run deadline cannot overshoot it.
        """
        run_at = self.deadline_at()
        if self.query_timeout is None:
            return run_at
        query_at = time.monotonic() + self.query_timeout
        return query_at if run_at is None else min(query_at, run_at)

    # -- paths -----------------------------------------------------------------

    def charge_path(self) -> bool:
        """Consume one path; False iff the path budget is now breached."""
        self.paths_used += 1
        return self.max_paths is None or self.paths_used <= self.max_paths

    def paths_exhausted(self) -> bool:
        return self.max_paths is not None and self.paths_used >= self.max_paths

    # -- parallel sharding (see repro.parallel) --------------------------------

    def shard_path_caps(self, jobs: int) -> list[Optional[int]]:
        """Split the *remaining* path budget across at most ``jobs``
        workers: ``remaining // shards`` each, remainder redistributed
        one path at a time to the first shards.  The wall-clock deadline
        is absolute (``time.monotonic`` is system-wide on Linux), so
        forked workers share it unchanged — only the path cap is divided.

        When fewer paths remain than ``jobs``, the shard count is
        clamped to ``remaining`` so no worker receives a 0-path cap
        (which would make it breach instantly and speculate nothing);
        callers spawn ``len(result)`` workers.  An exhausted budget
        yields ``[]``: there is no useful work to fan out.
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if self.max_paths is None:
            return [None] * jobs
        remaining = max(0, self.max_paths - self.paths_used)
        shards = min(jobs, remaining)
        if shards == 0:
            return []
        base, extra = divmod(remaining, shards)
        return [base + 1 if i < extra else base for i in range(shards)]

    def rescope_for_worker(self, path_cap: Optional[int]) -> "Budget":
        """Adopt a worker's shard of the path budget (worker side, on a
        forked copy): the worker starts its own path count at zero and
        may explore at most ``path_cap`` paths.  Deadline, query timeout,
        and the armed clock are inherited unchanged."""
        self.paths_used = 0
        self.max_paths = path_cap
        return self

    # -- memory log ------------------------------------------------------------

    def memlog_exceeded(self, depth: int) -> bool:
        return self.max_memlog_depth is not None and depth > self.max_memlog_depth
