"""Command-line interface for the MIX and MIXY analyzers.

Usage::

    python -m repro.cli mix PROGRAM.mix [--entry typed|symbolic]
                                        [--env "x:int,p:bool"]
                                        [--defer] [--good-enough]
                                        [--auto-refine]
    python -m repro.cli mixy PROGRAM.c  [--entry typed|symbolic]
                                        [--entry-function main]
                                        [--strict-deref]

Exit status: 0 when the analysis accepts / reports no warnings, 1 when
it rejects or warns, 2 on usage or parse errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.budget import Budget
from repro.core import MixConfig, SoundnessMode, analyze, auto_place_blocks
from repro.lang.parser import ParseError, parse, parse_type
from repro.lang.lexer import LexError
from repro.symexec import IfStrategy, SymConfig
from repro.typecheck.types import TypeEnv


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="MIX / MIXY static analysis (PLDI 2010 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mix = sub.add_parser("mix", help="analyze a MIX-language program")
    mix.add_argument("file", help="program file ('-' for stdin)")
    mix.add_argument("--entry", choices=["typed", "symbolic"], default="typed")
    mix.add_argument(
        "--env",
        default="",
        help="comma-separated free-variable types, e.g. 'x:int,p:bool,r:int ref'",
    )
    mix.add_argument(
        "--defer",
        action="store_true",
        help="use the SEIf-Defer rule instead of forking at conditionals",
    )
    mix.add_argument(
        "--good-enough",
        action="store_true",
        help="bounded (unsound) exploration instead of the exhaustiveness check",
    )
    mix.add_argument(
        "--auto-refine",
        action="store_true",
        help="insert typed/symbolic blocks automatically on failure",
    )
    mix.add_argument("--max-unroll", type=int, default=64)
    mix.add_argument(
        "--solver-stats",
        action="store_true",
        help="print solver-service counters (queries, cache hits, solve time)",
    )
    _add_budget_flags(mix)
    _add_trust_flags(mix)
    _add_perf_flags(mix)

    mixy = sub.add_parser("mixy", help="analyze a mini-C program for null errors")
    mixy.add_argument("file", help="C source file ('-' for stdin)")
    mixy.add_argument("--entry", choices=["typed", "symbolic"], default="typed")
    mixy.add_argument("--entry-function", default="main")
    mixy.add_argument(
        "--strict-deref",
        action="store_true",
        help="require nonnull at every dereference (not just annotations)",
    )
    mixy.add_argument("--no-cache", action="store_true", help="disable block caching")
    mixy.add_argument(
        "--solver-stats",
        action="store_true",
        help="print solver-service counters (queries, cache hits, solve time)",
    )
    _add_budget_flags(mixy)
    _add_trust_flags(mixy)
    _add_perf_flags(mixy)

    prove = sub.add_parser(
        "prove",
        help="prove symbolic()/assume/check property files; one verdict "
        "per file (PROVED / COUNTEREXAMPLE / UNCONFIRMED / BUDGET / ERROR)",
    )
    prove.add_argument(
        "files",
        nargs="+",
        help="property files; .c runs under MIXY, anything else under MIX",
    )
    prove.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="prove up to N property files concurrently (verdict lines "
        "are identical to --jobs 1 and always in sorted-file order)",
    )
    prove.add_argument(
        "--entry-function",
        default="main",
        help="entry function for mini-C property files (default main)",
    )
    prove.add_argument(
        "--env",
        default="",
        help="comma-separated free-variable types for mini-ML files",
    )
    prove.add_argument("--max-unroll", type=int, default=64)
    prove.add_argument(
        "--no-cache", action="store_true", help="disable MIXY block caching"
    )
    prove.add_argument(
        "--entry",
        choices=["typed", "symbolic"],
        default="symbolic",
        help="mini-C proving mode: 'symbolic' explores the entry function "
        "exhaustively (the default); 'typed' proves checks embedded in "
        "MIX(symbolic) blocks of a larger program via the fixpoint",
    )
    prove.add_argument(
        "--schedule",
        choices=["fifo", "waves", "portfolio"],
        default="fifo",
        help="speculative dispatch policy for within-property warming "
        "under --jobs N (see repro.schedule)",
    )
    prove.add_argument(
        "--sched-hints",
        default=None,
        metavar="FILE",
        help="scheduling hint file (.repro-sched.json) for --schedule",
    )
    _add_budget_flags(prove)

    serve = sub.add_parser(
        "serve",
        help="run a persistent analysis daemon with a warm, disk-backed "
        "cross-run cache (see repro.serve for the protocol)",
    )
    serve.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="Unix socket to listen on (default .repro-serve.sock)",
    )
    serve.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="listen on TCP instead of a Unix socket (port 0 picks a free "
        "port; the chosen one is announced on stdout)",
    )
    serve.add_argument(
        "--store",
        default=".repro-store",
        metavar="DIR",
        help="cross-run store directory persisted between restarts "
        "(default .repro-store)",
    )
    serve.add_argument(
        "--no-store",
        action="store_true",
        help="serve from memory only; nothing is persisted",
    )
    serve.add_argument(
        "--save-every",
        type=int,
        default=1,
        metavar="N",
        help="persist the store after every N analyze requests (default 1)",
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="exit after serving N requests (for tests and CI)",
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write the daemon's JSONL event trace to FILE",
    )
    serve.add_argument(
        "--trace-mode",
        choices=["truncate", "append", "rotate"],
        default="rotate",
        help="what to do with an existing trace file (default rotate: the "
        "previous daemon life survives as FILE.1)",
    )
    serve.add_argument(
        "--request-deadline",
        type=float,
        default=None,
        metavar="S",
        help="server-side wall-clock cap per analyze request, folded into "
        "its Budget; a worker still running S+2s later is killed and the "
        "client gets a 'degraded' reply",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        metavar="N",
        help="analyze requests admitted (running + queued) before the "
        "daemon sheds with 'busy' replies (default 8)",
    )
    serve.add_argument(
        "--read-deadline",
        type=float,
        default=10.0,
        metavar="S",
        help="per-connection read deadline: a request line stalled this "
        "long gets a protocol_error and the connection is closed "
        "(default 10; 0 disables)",
    )
    serve.add_argument(
        "--max-request-bytes",
        type=int,
        default=4 * 1024 * 1024,
        metavar="N",
        help="longest accepted request line; longer ones are dropped with "
        "a protocol_error reply (default 4MiB)",
    )
    serve.add_argument(
        "--max-conns",
        type=int,
        default=32,
        metavar="N",
        help="concurrent connections before new ones are refused with a "
        "'busy' reply (default 32)",
    )
    serve.add_argument(
        "--no-isolate",
        action="store_true",
        help="run analyses in the daemon process instead of forked request "
        "workers (faster, but a crashing analysis takes the daemon down)",
    )
    serve.add_argument(
        "--pool",
        type=int,
        default=None,
        metavar="N",
        help="persistent prefork worker pool width: N long-lived workers "
        "serve analyze requests concurrently and are recycled on staleness "
        "or faults (default min(4, cpu count); 0 = legacy fork-per-request)",
    )
    serve.add_argument(
        "--worker-requests",
        type=int,
        default=200,
        metavar="K",
        help="recycle a pooled worker after serving K requests "
        "(default 200; 0 = unbounded)",
    )
    serve.add_argument(
        "--worker-max-rss-mb",
        type=float,
        default=None,
        metavar="MB",
        help="recycle a pooled worker whose RSS high-water mark passes MB",
    )
    serve.add_argument(
        "--checkpoint-secs",
        type=float,
        default=30.0,
        metavar="S",
        help="persist dirty warm state every S seconds, on top of "
        "--save-every (default 30; 0 disables)",
    )
    serve.add_argument(
        "--crash-dir",
        default=".repro-crashes",
        metavar="DIR",
        help="where dead request workers' crash repros land "
        "(default .repro-crashes)",
    )

    client = sub.add_parser(
        "client",
        help="send one request to a running 'repro serve' daemon and print "
        "the result exactly like a fresh mix/mixy run would",
    )
    client.add_argument(
        "lang", nargs="?", choices=["mix", "mixy"], help="analysis language"
    )
    client.add_argument("file", nargs="?", help="source file ('-' for stdin)")
    client.add_argument(
        "--connect",
        default="unix:.repro-serve.sock",
        metavar="ADDR",
        help="daemon address: unix:PATH or tcp:HOST:PORT "
        "(default unix:.repro-serve.sock)",
    )
    client.add_argument("--timeout", type=float, default=600.0, metavar="S")
    client.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="give up connecting after S seconds (default 10)",
    )
    client.add_argument(
        "--retry",
        type=int,
        default=0,
        metavar="N",
        help="retry up to N times on transient failures (dead socket, "
        "daemon died mid-reply, 'busy' replies) with jittered exponential "
        "backoff honoring the daemon's retry_after_ms hint",
    )
    client.add_argument(
        "--inject-fault",
        action="append",
        default=None,
        metavar="N:KIND",
        help="ship a solver-fault schedule with the request (served by the "
        "daemon's isolated worker); same N:KIND specs as mix/mixy",
    )
    client.add_argument(
        "--ping", action="store_true", help="health-check the daemon and exit"
    )
    client.add_argument(
        "--stats",
        action="store_true",
        help="print the daemon's cache/request counters and exit",
    )
    client.add_argument(
        "--shutdown",
        action="store_true",
        help="ask the daemon to persist its store and exit",
    )
    client.add_argument(
        "--served",
        action="store_true",
        help="also print this request's daemon-side cache counters to stderr",
    )
    client.add_argument(
        "--bench",
        type=int,
        default=None,
        metavar="N",
        help="load-generator mode: fire N copies of this analyze request "
        "at the daemon and print throughput plus p50/p95/p99 latency",
    )
    client.add_argument(
        "--concurrency",
        type=int,
        default=1,
        metavar="C",
        help="client connections driving --bench traffic (default 1)",
    )
    client.add_argument(
        "--prove",
        action="store_true",
        help="send a 'prove' request instead of 'analyze': classify FILE "
        "as one property file, printing the same verdict line a local "
        "'repro prove FILE' would",
    )
    client.add_argument(
        "--entry",
        choices=["typed", "symbolic"],
        default=None,
        help="entry mode (default: typed for analyze, symbolic for --prove)",
    )
    client.add_argument("--entry-function", default="main")
    client.add_argument("--strict-deref", action="store_true")
    client.add_argument("--no-cache", action="store_true")
    client.add_argument("--env", default="")
    client.add_argument("--defer", action="store_true")
    client.add_argument("--good-enough", action="store_true")
    client.add_argument("--max-unroll", type=int, default=64)
    _add_budget_flags(client)

    report = sub.add_parser(
        "trace-report",
        help="aggregate a --trace file into per-block / per-round / "
        "per-query-tier tables",
    )
    report.add_argument("file", help="JSONL trace file written by --trace")
    report.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="hottest blocks to show (default 10)",
    )
    report.add_argument(
        "--json", action="store_true",
        help="print the aggregated digest as JSON instead of tables",
    )
    report.add_argument(
        "--emit-hints", default=None, metavar="FILE",
        help="distill the digest into a scheduling hint file "
        "(.repro-sched.json schema v1) for a later run's --sched-hints",
    )

    chaos = sub.add_parser(
        "chaos",
        help="drive a live daemon through a scripted fault campaign "
        "(worker kills, solver faults, store corruption, socket abuse) "
        "and check it survives with sound answers",
    )
    chaos.add_argument(
        "chaos_args",
        nargs=argparse.REMAINDER,
        help="arguments for the chaos harness; see 'repro chaos -- --help'",
    )

    args = parser.parse_args(argv)
    if args.command == "prove":
        return _run_prove(args)
    if args.command == "trace-report":
        return _run_trace_report(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "client":
        return _run_client(args)
    if args.command == "chaos":
        from repro.chaos import main as chaos_main

        forwarded = args.chaos_args
        if forwarded and forwarded[0] == "--":
            forwarded = forwarded[1:]
        return chaos_main(forwarded)
    try:
        source = _read(args.file)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        _apply_trust_flags(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    traced = _start_trace(args)
    try:
        if args.command == "mix":
            return _run_mix(args, source)
        return _run_mixy(args, source)
    finally:
        _finish_trace(traced)


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _add_budget_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for the whole run; on breach the analysis "
        "degrades gracefully instead of running on",
    )
    sub.add_argument(
        "--query-timeout-ms",
        type=int,
        default=None,
        metavar="MS",
        help="per-solver-query timeout; a timed-out query returns UNKNOWN "
        "and is treated conservatively",
    )
    sub.add_argument(
        "--max-paths",
        type=int,
        default=None,
        metavar="N",
        help="total path budget for the run; the frontier beyond it is "
        "abandoned with a budget diagnostic",
    )


def _add_trust_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--validate-witnesses",
        action="store_true",
        default=None,
        help="replay each reported error path through the concrete "
        "interpreter and attach a CONFIRMED / UNCONFIRMED / "
        "REPLAY_DIVERGED verdict (trust ring 1)",
    )
    sub.add_argument(
        "--paranoid",
        action="store_true",
        default=None,
        help="self-check every SAT model against its query before trusting "
        "or caching it (trust ring 2)",
    )
    sub.add_argument(
        "--inject-fault",
        action="append",
        default=[],
        metavar="N:KIND",
        help="inject a solver fault at the N-th query; KIND is one of "
        "timeout, unknown, error, bad_model, crash (repeatable; for "
        "robustness testing)",
    )
    sub.add_argument(
        "--crash-dir",
        default=".repro-crashes",
        metavar="DIR",
        help="where contained analysis crashes write their minimized repros "
        "(trust ring 3)",
    )


def _add_perf_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for speculative query-cache warming "
        "(see docs/ARCHITECTURE.md §1.4); 1 = serial, the default",
    )
    sub.add_argument(
        "--profile",
        type=int,
        default=None,
        metavar="N",
        help="profile the run with cProfile and print the top N functions "
        "by cumulative time, per phase, to stderr",
    )
    sub.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a structured JSONL event trace (spans, counters) of "
        "the run to FILE; aggregate it with 'repro trace-report FILE'",
    )
    sub.add_argument(
        "--trace-mode",
        choices=["truncate", "append", "rotate"],
        default="truncate",
        help="what to do with an existing --trace file: truncate it (the "
        "default), append this run's session to it, or rotate it to FILE.1",
    )
    sub.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="cross-run analysis store (see repro.store): warm the solver "
        "query cache and block memos from DIR before the run and persist "
        "them back after; a missing or corrupt store degrades to cold",
    )
    sub.add_argument(
        "--schedule",
        choices=["fifo", "waves", "portfolio"],
        default=None,
        help="speculative dispatch policy under --jobs N: fifo = one task "
        "per block, waves = similarity-batched waves with convergence "
        "skipping, portfolio = waves plus strategy racing for hot blocks "
        "(output is identical in every mode; see repro.schedule)",
    )
    sub.add_argument(
        "--sched-hints",
        default=None,
        metavar="FILE",
        help="scheduling hint file from a prior run's "
        "'trace-report --emit-hints' (.repro-sched.json); stale or "
        "corrupt hints are ignored gracefully",
    )


def _apply_trust_flags(args: argparse.Namespace) -> None:
    """Configure the shared solver service for rings 2 and 3."""
    from repro import smt
    from repro.smt.service import FaultInjector

    service = smt.get_service()
    if args.paranoid:
        service.paranoid = True
    if args.inject_fault:
        faults: dict[int, str] = {}
        for spec in args.inject_fault:
            n_text, _, kind = spec.partition(":")
            try:
                n = int(n_text)
            except ValueError:
                raise ValueError(
                    f"bad --inject-fault {spec!r}; expected N:KIND"
                ) from None
            faults[n] = kind or FaultInjector.TIMEOUT
        service.fault_injector = FaultInjector(faults=faults)


def _start_trace(args: argparse.Namespace) -> bool:
    """Arm the process-wide tracer when ``--trace FILE`` was given."""
    if not getattr(args, "trace", None):
        return False
    from repro.trace import TRACER

    TRACER.enable(args.trace, mode=getattr(args, "trace_mode", "truncate"))
    return True


def _finish_trace(traced: bool) -> None:
    """Stamp the run's final solver counters onto the trace and close it."""
    if not traced:
        return
    from repro import smt
    from repro.trace import TRACER

    stats = smt.get_service().stats
    if TRACER.enabled:
        TRACER.counter("solver.queries", stats.queries)
        TRACER.counter("solver.cache_hits", stats.cache_hits)
        TRACER.counter("solver.full_solves", stats.full_solves)
        TRACER.counter("solver.solve_seconds", round(stats.solve_seconds, 6))
        if stats.waves_dispatched:
            TRACER.counter("solver.waves_dispatched", stats.waves_dispatched)
        if stats.blocks_skipped:
            TRACER.counter("solver.blocks_skipped", stats.blocks_skipped)
        if stats.speculative is not None:
            TRACER.counter(
                "solver.speculative.solve_seconds",
                round(stats.speculative.solve_seconds, 6),
            )
    TRACER.close()


def _run_trace_report(args: argparse.Namespace) -> int:
    import json

    from repro.trace import TraceSchemaError, digest_file, format_report

    try:
        digest = digest_file(args.file)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except TraceSchemaError as error:
        print(f"error: invalid trace: {error}", file=sys.stderr)
        return 2
    if args.emit_hints:
        from repro.schedule import emit_hints

        hints = emit_hints(digest, args.emit_hints)
        print(
            f"wrote {len(hints)} block hint(s) ({len(hints.hot)} hot) "
            f"to {args.emit_hints}",
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(digest, indent=2, sort_keys=True))
    else:
        print(format_report(digest, top=args.top))
    return 0


def _warn_on_divergence() -> int:
    """Loudly surface REPLAY_DIVERGED verdicts; returns their count."""
    from repro import smt

    diverged = smt.get_service().stats.witnesses_diverged
    if diverged:
        print(
            f"TRUST FAILURE: {diverged} witness replay(s) DIVERGED from the "
            "path condition — the executor or solver produced a wrong "
            "verdict; this is a bug in the analyzer, not the program",
            file=sys.stderr,
        )
    return diverged


def _apply_perf_flags(args: argparse.Namespace, config, profiler) -> None:
    """Fold --jobs / --schedule / --sched-hints into the config and arm
    worker-side profiling sidecars when --profile meets --jobs N."""
    if args.jobs is not None:
        config.jobs = args.jobs
    if args.schedule is not None:
        config.schedule = args.schedule
    if args.sched_hints is not None:
        config.sched_hints = args.sched_hints
    if profiler.enabled and config.jobs > 1:
        profiler.enable_workers(args.trace or f".repro-profile-{os.getpid()}")
    profiler.warn_if_parallel(config.jobs)


def _open_store(args: argparse.Namespace):
    """Open ``--store DIR`` and warm the solver service from it."""
    if not getattr(args, "store", None):
        return None
    from repro import smt
    from repro.store import AnalysisStore

    store = AnalysisStore.open(args.store)
    store.load_into_service(smt.get_service())
    return store


def _save_store(store) -> None:
    if store is not None:
        from repro import smt

        store.save(smt.get_service())


def _run_serve(args: argparse.Namespace) -> int:
    from repro.serve import ReproDaemon
    from repro.trace import TRACER

    socket_path = args.socket
    if socket_path is None and args.listen is None:
        socket_path = ".repro-serve.sock"
    if args.trace:
        TRACER.enable(args.trace, mode=args.trace_mode)
    daemon = ReproDaemon(
        socket_path=socket_path,
        listen=args.listen,
        store_dir=None if args.no_store else args.store,
        save_every=args.save_every,
        max_requests=args.max_requests,
        queue_depth=args.queue_depth,
        read_deadline=args.read_deadline,
        max_request_bytes=args.max_request_bytes,
        max_conns=args.max_conns,
        request_deadline=args.request_deadline,
        isolate=False if args.no_isolate else None,
        checkpoint_secs=args.checkpoint_secs,
        crash_dir=args.crash_dir,
        pool_size=args.pool,
        worker_requests=args.worker_requests,
        worker_max_rss_mb=args.worker_max_rss_mb,
    )
    try:
        announce = daemon.bind()
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"repro-serve: listening on {announce}", flush=True)
    try:
        return daemon.serve_forever()
    except KeyboardInterrupt:
        return 0
    finally:
        TRACER.close()


def _run_prove(args: argparse.Namespace) -> int:
    from repro.prove import prove_files

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    options = {
        "entry": args.entry,
        "entry_function": args.entry_function,
        "env": args.env,
        "max_unroll": args.max_unroll,
        "no_cache": args.no_cache,
        "jobs": args.jobs,
        "schedule": args.schedule,
        "sched_hints": args.sched_hints,
        "deadline": args.deadline,
        "query_timeout_ms": args.query_timeout_ms,
        "max_paths": args.max_paths,
    }
    return prove_files(args.files, options, jobs=args.jobs)


def _run_client(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ClientError, request_with_retry

    try:
        if args.ping or args.stats or args.shutdown:
            cmd = "ping" if args.ping else "stats" if args.stats else "shutdown"
            response = request_with_retry(
                args.connect,
                {"cmd": cmd},
                timeout=args.timeout,
                connect_timeout=args.connect_timeout,
                retries=args.retry,
            )
            print(json.dumps(response, indent=2, sort_keys=True))
            return 0 if response.get("ok") else 2
        if not args.lang or not args.file:
            print(
                "error: client needs LANG FILE "
                "(or one of --ping / --stats / --shutdown)",
                file=sys.stderr,
            )
            return 2
        source = _read(args.file)
        # --prove proves the entry function exhaustively by default
        # (matching `repro prove`); plain analyze keeps the typed entry
        # the `repro mix`/`repro mixy` one-shots default to.
        entry = args.entry or ("symbolic" if args.prove else "typed")
        options = {
            "entry": entry,
            "deadline": args.deadline,
            "query_timeout_ms": args.query_timeout_ms,
            "max_paths": args.max_paths,
        }
        if args.inject_fault:
            options["inject_fault"] = list(args.inject_fault)
        if args.lang == "mixy":
            options.update(
                entry_function=args.entry_function,
                strict_deref=args.strict_deref,
                no_cache=args.no_cache,
            )
        else:
            options.update(
                env=args.env,
                defer=args.defer,
                good_enough=args.good_enough,
                max_unroll=args.max_unroll,
            )
        if args.prove:
            # Match the local prover's naming so client and one-shot
            # verdict lines are byte-identical for the same file.
            options["name"] = args.file
        payload = {
            "cmd": "prove" if args.prove else "analyze",
            "lang": args.lang,
            "source": source,
            "options": options,
        }
        if args.bench is not None:
            return _run_client_bench(args, payload)
        response = request_with_retry(
            args.connect,
            payload,
            timeout=args.timeout,
            connect_timeout=args.connect_timeout,
            retries=args.retry,
        )
    except (ClientError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not response.get("ok"):
        status = response.get("status", "error")
        detail = response.get("error") or "request rejected"
        line = f"error: daemon: {detail}" if status == "error" else (
            f"error: daemon: {status}: {detail}"
        )
        print(line, file=sys.stderr)
        repro_path = response.get("crash_repro")
        if repro_path:
            print(f"crash repro: {repro_path}", file=sys.stderr)
        return 2
    result = response["result"]
    # Parse/usage failures print to stderr in the one-shot CLI; keep the
    # client stream-for-stream identical with it.
    out = sys.stderr if result["exit"] == 2 else sys.stdout
    for line in result["lines"]:
        print(line, file=out)
    if args.served:
        print(
            f"served: {json.dumps(response.get('served', {}), sort_keys=True)}",
            file=sys.stderr,
        )
    return int(result["exit"])


def _run_client_bench(args: argparse.Namespace, payload: dict) -> int:
    """``repro client --bench N --concurrency C``: hammer the daemon with
    N copies of this analyze request over C connections and print
    throughput plus latency percentiles."""
    from repro.serve import bench

    if args.bench < 1 or args.concurrency < 1:
        print(
            "error: --bench needs N >= 1 and --concurrency C >= 1",
            file=sys.stderr,
        )
        return 2
    report = bench(
        args.connect,
        payload,
        requests=args.bench,
        concurrency=args.concurrency,
        timeout=args.timeout,
    )
    statuses = ", ".join(
        f"{status}={count}"
        for status, count in sorted(report["statuses"].items())
    ) or "none"
    print(
        f"bench: {report['completed']}/{report['requests']} replies over "
        f"{report['concurrency']} connection(s) in "
        f"{report['wall_secs']:.2f}s"
    )
    print(f"  throughput: {report['throughput_rps']:.2f} req/s")
    print(
        f"  latency: p50 {report['p50_ms']:.1f} ms | "
        f"p95 {report['p95_ms']:.1f} ms | p99 {report['p99_ms']:.1f} ms"
    )
    print(f"  statuses: {statuses}")
    for error in report["errors"][:5]:
        print(f"  error: {error}", file=sys.stderr)
    failed = (
        report["completed"] != report["requests"]
        or report["ok"] != report["completed"]
    )
    return 1 if failed else 0


def _make_budget(args: argparse.Namespace) -> Optional[Budget]:
    if args.deadline is None and args.query_timeout_ms is None and args.max_paths is None:
        return None
    return Budget(
        deadline=args.deadline,
        query_timeout=(
            args.query_timeout_ms / 1000.0
            if args.query_timeout_ms is not None
            else None
        ),
        max_paths=args.max_paths,
    )


def _parse_env(spec: str) -> TypeEnv:
    bindings = {}
    for item in filter(None, (part.strip() for part in spec.split(","))):
        name, _, type_text = item.partition(":")
        if not type_text:
            raise ValueError(f"bad --env entry {item!r}; expected name:type")
        bindings[name.strip()] = parse_type(type_text.strip())
    return TypeEnv(bindings)


def _run_mix(args: argparse.Namespace, source: str) -> int:
    from repro.profiling import PhaseProfiler

    profiler = PhaseProfiler(args.profile)
    try:
        with profiler.phase("parse"):
            program = parse(source)
            env = _parse_env(args.env)
    except (ParseError, LexError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    config = MixConfig(
        sym=SymConfig(
            if_strategy=IfStrategy.DEFER if args.defer else IfStrategy.FORK,
            max_loop_unroll=args.max_unroll,
        ),
        soundness=SoundnessMode.GOOD_ENOUGH
        if args.good_enough
        else SoundnessMode.SOUND,
        budget=_make_budget(args),
        crash_dir=args.crash_dir,
    )
    _apply_perf_flags(args, config, profiler)
    if args.validate_witnesses:
        config.validate_witnesses = True
    config.store = _open_store(args)
    with profiler.phase("analyze"):
        if args.auto_refine:
            result = auto_place_blocks(program, env, args.entry, config)
            for i, step in enumerate(result.steps, 1):
                print(f"refinement step {i}: {step}")
            if result.steps:
                print(f"annotated program: {result.annotated_source}")
            report = result.report
        else:
            report = analyze(program, env, args.entry, config)
    _save_store(config.store)
    profiler.report()
    print(report)
    for warning in report.warnings:
        print(f"warning: {warning}")
    if args.solver_stats:
        from repro import smt

        print(smt.get_service().stats.format_table())
    _warn_on_divergence()
    return 0 if report.ok else 1


def _run_mixy(args: argparse.Namespace, source: str) -> int:
    from repro.mixy import Mixy, MixyConfig
    from repro.mixy.c.parser import CParseError
    from repro.mixy.qual import QualConfig
    from repro.profiling import PhaseProfiler

    profiler = PhaseProfiler(args.profile)
    config = MixyConfig(
        qual=QualConfig(deref_requires_nonnull=args.strict_deref),
        enable_cache=not args.no_cache,
        budget=_make_budget(args),
        crash_dir=args.crash_dir,
    )
    _apply_perf_flags(args, config, profiler)
    if args.validate_witnesses:
        config.validate_witnesses = True
    config.store = _open_store(args)
    try:
        with profiler.phase("parse+infer"):
            mixy = Mixy(source, config)
        with profiler.phase("analyze"):
            warnings = mixy.run(entry=args.entry, entry_function=args.entry_function)
    except CParseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyError as error:
        print(f"error: no such function {error}", file=sys.stderr)
        return 2
    _save_store(config.store)
    profiler.report()
    for warning in warnings:
        print(warning)
    summary = (
        f"{len(warnings)} warning(s); "
        f"{mixy.stats['symbolic_blocks_run']} symbolic block run(s); "
        f"{mixy.executor.stats['solver_calls']} solver call(s); "
        f"{mixy.stats['analysis_seconds']:.3f}s"
    )
    print(summary)
    if args.solver_stats:
        from repro import smt

        print(smt.get_service().stats.format_table())
    _warn_on_divergence()
    # Contained analysis crashes degrade a block, they do not make the
    # program's verdict a failure: the CLI still exits 0 on them.
    from repro.mixy.symexec import CErrKind

    contained = sum(
        1 for w in mixy.executor.warnings if w.kind is CErrKind.CRASH
    )
    return 0 if len(warnings) <= contained else 1


if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Reports are made to be piped (trace-report ... | head); a
        # closed consumer is not an error worth a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
