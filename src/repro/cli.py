"""Command-line interface for the MIX and MIXY analyzers.

Usage::

    python -m repro.cli mix PROGRAM.mix [--entry typed|symbolic]
                                        [--env "x:int,p:bool"]
                                        [--defer] [--good-enough]
                                        [--auto-refine]
    python -m repro.cli mixy PROGRAM.c  [--entry typed|symbolic]
                                        [--entry-function main]
                                        [--strict-deref]

Exit status: 0 when the analysis accepts / reports no warnings, 1 when
it rejects or warns, 2 on usage or parse errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.budget import Budget
from repro.core import MixConfig, SoundnessMode, analyze, auto_place_blocks
from repro.lang.parser import ParseError, parse, parse_type
from repro.lang.lexer import LexError
from repro.symexec import IfStrategy, SymConfig
from repro.typecheck.types import TypeEnv


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="MIX / MIXY static analysis (PLDI 2010 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mix = sub.add_parser("mix", help="analyze a MIX-language program")
    mix.add_argument("file", help="program file ('-' for stdin)")
    mix.add_argument("--entry", choices=["typed", "symbolic"], default="typed")
    mix.add_argument(
        "--env",
        default="",
        help="comma-separated free-variable types, e.g. 'x:int,p:bool,r:int ref'",
    )
    mix.add_argument(
        "--defer",
        action="store_true",
        help="use the SEIf-Defer rule instead of forking at conditionals",
    )
    mix.add_argument(
        "--good-enough",
        action="store_true",
        help="bounded (unsound) exploration instead of the exhaustiveness check",
    )
    mix.add_argument(
        "--auto-refine",
        action="store_true",
        help="insert typed/symbolic blocks automatically on failure",
    )
    mix.add_argument("--max-unroll", type=int, default=64)
    mix.add_argument(
        "--solver-stats",
        action="store_true",
        help="print solver-service counters (queries, cache hits, solve time)",
    )
    _add_budget_flags(mix)

    mixy = sub.add_parser("mixy", help="analyze a mini-C program for null errors")
    mixy.add_argument("file", help="C source file ('-' for stdin)")
    mixy.add_argument("--entry", choices=["typed", "symbolic"], default="typed")
    mixy.add_argument("--entry-function", default="main")
    mixy.add_argument(
        "--strict-deref",
        action="store_true",
        help="require nonnull at every dereference (not just annotations)",
    )
    mixy.add_argument("--no-cache", action="store_true", help="disable block caching")
    mixy.add_argument(
        "--solver-stats",
        action="store_true",
        help="print solver-service counters (queries, cache hits, solve time)",
    )
    _add_budget_flags(mixy)

    args = parser.parse_args(argv)
    try:
        source = _read(args.file)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.command == "mix":
        return _run_mix(args, source)
    return _run_mixy(args, source)


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _add_budget_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for the whole run; on breach the analysis "
        "degrades gracefully instead of running on",
    )
    sub.add_argument(
        "--query-timeout-ms",
        type=int,
        default=None,
        metavar="MS",
        help="per-solver-query timeout; a timed-out query returns UNKNOWN "
        "and is treated conservatively",
    )
    sub.add_argument(
        "--max-paths",
        type=int,
        default=None,
        metavar="N",
        help="total path budget for the run; the frontier beyond it is "
        "abandoned with a budget diagnostic",
    )


def _make_budget(args: argparse.Namespace) -> Optional[Budget]:
    if args.deadline is None and args.query_timeout_ms is None and args.max_paths is None:
        return None
    return Budget(
        deadline=args.deadline,
        query_timeout=(
            args.query_timeout_ms / 1000.0
            if args.query_timeout_ms is not None
            else None
        ),
        max_paths=args.max_paths,
    )


def _parse_env(spec: str) -> TypeEnv:
    bindings = {}
    for item in filter(None, (part.strip() for part in spec.split(","))):
        name, _, type_text = item.partition(":")
        if not type_text:
            raise ValueError(f"bad --env entry {item!r}; expected name:type")
        bindings[name.strip()] = parse_type(type_text.strip())
    return TypeEnv(bindings)


def _run_mix(args: argparse.Namespace, source: str) -> int:
    try:
        program = parse(source)
        env = _parse_env(args.env)
    except (ParseError, LexError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    config = MixConfig(
        sym=SymConfig(
            if_strategy=IfStrategy.DEFER if args.defer else IfStrategy.FORK,
            max_loop_unroll=args.max_unroll,
        ),
        soundness=SoundnessMode.GOOD_ENOUGH
        if args.good_enough
        else SoundnessMode.SOUND,
        budget=_make_budget(args),
    )
    if args.auto_refine:
        result = auto_place_blocks(program, env, args.entry, config)
        for i, step in enumerate(result.steps, 1):
            print(f"refinement step {i}: {step}")
        if result.steps:
            print(f"annotated program: {result.annotated_source}")
        report = result.report
    else:
        report = analyze(program, env, args.entry, config)
    print(report)
    for warning in report.warnings:
        print(f"warning: {warning}")
    if args.solver_stats:
        from repro import smt

        print(smt.get_service().stats.format_table())
    return 0 if report.ok else 1


def _run_mixy(args: argparse.Namespace, source: str) -> int:
    from repro.mixy import Mixy, MixyConfig
    from repro.mixy.c.parser import CParseError
    from repro.mixy.qual import QualConfig

    config = MixyConfig(
        qual=QualConfig(deref_requires_nonnull=args.strict_deref),
        enable_cache=not args.no_cache,
        budget=_make_budget(args),
    )
    try:
        mixy = Mixy(source, config)
        warnings = mixy.run(entry=args.entry, entry_function=args.entry_function)
    except CParseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyError as error:
        print(f"error: no such function {error}", file=sys.stderr)
        return 2
    for warning in warnings:
        print(warning)
    summary = (
        f"{len(warnings)} warning(s); "
        f"{mixy.stats['symbolic_blocks_run']} symbolic block run(s); "
        f"{mixy.executor.stats['solver_calls']} solver call(s); "
        f"{mixy.stats['analysis_seconds']:.3f}s"
    )
    print(summary)
    if args.solver_stats:
        from repro import smt

        print(smt.get_service().stats.format_table())
    return 0 if not warnings else 1


if __name__ == "__main__":
    sys.exit(main())
