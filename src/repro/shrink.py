"""Delta-debugging minimizers for crash repros (trust ring 3).

When a block's analysis crashes, the containment boundary records not
just the offending source but the *smallest* source that still triggers
the same exception — a greedy structural reduction in the ddmin spirit:
repeatedly try replacing a node with one of its children (or dropping a
statement / declaration), keeping any strictly smaller candidate on
which the probe still crashes the same way.

Probes are capped by count and wall clock (:class:`ProbeBudget`) so
shrinking can never meaningfully delay the analysis it is protecting; an
unshrinkable crash simply ships its original source.
"""

from __future__ import annotations

import time
from dataclasses import fields as dataclass_fields
from dataclasses import replace
from typing import Callable, Iterator

from repro.lang.ast import BoolLit, Expr, IntLit, UnitLit
from repro.mixy.c.ast import Block, CProgram, CStmt, If, While


class ProbeBudget:
    """Caps shrink probes by count and wall clock."""

    def __init__(self, max_probes: int = 200, max_seconds: float = 2.0) -> None:
        self.remaining = max_probes
        self.deadline = time.monotonic() + max_seconds

    def take(self) -> bool:
        if self.remaining <= 0 or time.monotonic() > self.deadline:
            return False
        self.remaining -= 1
        return True


def _guarded(crashes: Callable, budget: ProbeBudget) -> Callable:
    """Wrap the caller's probe: budget-checked, exception-safe."""

    def probe(candidate) -> bool:
        if not budget.take():
            return False
        try:
            return bool(crashes(candidate))
        except Exception:
            return False  # a probe must never crash the shrinker

    return probe


# ---------------------------------------------------------------------------
# MIX: shrinking a lang.ast expression
# ---------------------------------------------------------------------------


def shrink_expr(
    expr: Expr,
    crashes: Callable[[Expr], bool],
    max_probes: int = 200,
    max_seconds: float = 2.0,
) -> Expr:
    """The smallest expression found on which ``crashes`` still holds."""
    probe = _guarded(crashes, ProbeBudget(max_probes, max_seconds))
    if not probe(expr):
        return expr  # not reproducible under probing: nothing to minimize
    progress = True
    while progress:
        progress = False
        size = node_count(expr)
        for candidate in _expr_reductions(expr):
            if node_count(candidate) >= size:
                continue
            if probe(candidate):
                expr = candidate
                progress = True
                break
    return expr


def node_count(expr: Expr) -> int:
    return 1 + sum(node_count(child) for _name, child in _expr_children(expr))


def _expr_children(expr: Expr) -> list[tuple[str, Expr]]:
    return [
        (f.name, getattr(expr, f.name))
        for f in dataclass_fields(expr)
        if isinstance(getattr(expr, f.name), Expr)
    ]


def _expr_reductions(expr: Expr) -> Iterator[Expr]:
    """Strict reductions of ``expr``, biggest cuts first at each node."""
    children = _expr_children(expr)
    for _name, child in children:
        yield child
    yield UnitLit()
    yield IntLit(0)
    yield BoolLit(True)
    for name, child in children:
        for reduced in _expr_reductions(child):
            yield replace(expr, **{name: reduced})


# ---------------------------------------------------------------------------
# MIXY: shrinking a mini-C program
# ---------------------------------------------------------------------------


def shrink_c_program(
    program: CProgram,
    crashes: Callable[[CProgram], bool],
    max_probes: int = 200,
    max_seconds: float = 2.0,
) -> CProgram:
    """The smallest program found on which ``crashes`` still holds."""
    probe = _guarded(crashes, ProbeBudget(max_probes, max_seconds))
    if not probe(program):
        return program
    progress = True
    while progress:
        progress = False
        size = c_program_size(program)
        for candidate in _program_reductions(program):
            if c_program_size(candidate) >= size:
                continue
            if probe(candidate):
                program = candidate
                progress = True
                break
    return program


def c_program_size(program: CProgram) -> int:
    return (
        len(program.structs)
        + len(program.globals)
        + len(program.functions)
        + sum(
            _stmt_size(fn.body)
            for fn in program.functions.values()
            if fn.body is not None
        )
    )


def _stmt_size(stmt: CStmt) -> int:
    if isinstance(stmt, Block):
        return 1 + sum(_stmt_size(s) for s in stmt.stmts)
    if isinstance(stmt, If):
        els = _stmt_size(stmt.els) if stmt.els is not None else 0
        return 1 + _stmt_size(stmt.then) + els
    if isinstance(stmt, While):
        return 1 + _stmt_size(stmt.body)
    return 1


def _program_reductions(program: CProgram) -> Iterator[CProgram]:
    # Drop one declaration (the probe rejects candidates that fail in a
    # different way, e.g. by dropping the entry function).
    for name in program.functions:
        yield replace(
            program,
            functions={k: v for k, v in program.functions.items() if k != name},
        )
    for name in program.globals:
        yield replace(
            program,
            globals={k: v for k, v in program.globals.items() if k != name},
        )
    for name in program.structs:
        yield replace(
            program,
            structs={k: v for k, v in program.structs.items() if k != name},
        )
    # Reduce one function body.
    for name, fn in program.functions.items():
        if fn.body is None:
            continue
        for body in _block_reductions(fn.body):
            functions = dict(program.functions)
            functions[name] = replace(fn, body=body)
            yield replace(program, functions=functions)


def _block_reductions(block: Block) -> Iterator[Block]:
    for i in range(len(block.stmts)):
        yield Block(block.stmts[:i] + block.stmts[i + 1 :])
    for i, stmt in enumerate(block.stmts):
        for reduced in _stmt_reductions(stmt):
            yield Block(block.stmts[:i] + (reduced,) + block.stmts[i + 1 :])


def _stmt_reductions(stmt: CStmt) -> Iterator[CStmt]:
    if isinstance(stmt, Block):
        yield from _block_reductions(stmt)
    elif isinstance(stmt, If):
        yield stmt.then
        if stmt.els is not None:
            yield stmt.els
            yield replace(stmt, els=None)
        for reduced in _block_reductions(stmt.then):
            yield replace(stmt, then=reduced)
        if stmt.els is not None:
            for reduced in _block_reductions(stmt.els):
                yield replace(stmt, els=reduced)
    elif isinstance(stmt, While):
        yield stmt.body
        for reduced in _block_reductions(stmt.body):
            yield replace(stmt, body=reduced)
