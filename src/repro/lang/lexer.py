"""Lexer for the MIX source language.

Concrete syntax follows the paper's ML-like notation.  The block
delimiters are lexed specially:

- ``{t`` / ``{s`` (brace immediately followed by ``t``/``s`` and a
  non-identifier character) open a typed/symbolic block;
- ``t}`` / ``s}`` (the letter immediately followed by ``}``) close one.

The keyword forms ``typed { ... }`` and ``sym { ... }`` are also accepted
and are what the pretty-printer emits.  Comments are ``(* ... *)`` and
nest, as in ML.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import Iterator, Optional

from repro.lang.ast import Pos


class LexError(SyntaxError):
    """Raised on malformed input."""


@unique
class TokKind(Enum):
    INT = "int"
    STRING = "string"
    IDENT = "ident"
    KEYWORD = "keyword"
    SYMBOL = "symbol"
    BLOCK_OPEN_T = "{t"
    BLOCK_OPEN_S = "{s"
    BLOCK_CLOSE_T = "t}"
    BLOCK_CLOSE_S = "s}"
    EOF = "eof"


KEYWORDS = {
    "let",
    "in",
    "if",
    "then",
    "else",
    "fun",
    "while",
    "do",
    "done",
    "ref",
    "not",
    "true",
    "false",
    "typed",
    "sym",
    "symbolic",
    "assume",
    "check",
    "int",
    "bool",
    "str",
    "unit",
}

# Longest first so that ``:=`` wins over ``:``, ``<=`` over ``<``, etc.
SYMBOLS = [
    ":=",
    "->",
    "&&",
    "||",
    "<=",
    "<",
    "=",
    "+",
    "-",
    "*",
    "/",
    "(",
    ")",
    "{",
    "}",
    ";",
    ":",
    "!",
]


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    pos: Pos

    def __str__(self) -> str:
        return f"{self.kind.value}({self.text!r})@{self.pos}"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`LexError` on bad input."""
    return list(_Lexer(source).tokens())


class _Lexer:
    def __init__(self, source: str) -> None:
        self._src = source
        self._i = 0
        self._line = 1
        self._col = 1

    def _pos(self) -> Pos:
        return Pos(self._line, self._col)

    def _peek(self, offset: int = 0) -> str:
        j = self._i + offset
        return self._src[j] if j < len(self._src) else ""

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self._i < len(self._src):
                if self._src[self._i] == "\n":
                    self._line += 1
                    self._col = 1
                else:
                    self._col += 1
                self._i += 1

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            pos = self._pos()
            ch = self._peek()
            if not ch:
                yield Token(TokKind.EOF, "", pos)
                return
            token = (
                self._block_delimiter(pos)
                or self._number(pos)
                or self._string(pos)
                or self._word(pos)
                or self._symbol(pos)
            )
            if token is None:
                raise LexError(f"unexpected character {ch!r} at {pos}")
            yield token

    def _skip_trivia(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch.isspace():
                self._advance()
            elif ch == "(" and self._peek(1) == "*":
                self._skip_comment()
            else:
                return

    def _skip_comment(self) -> None:
        start = self._pos()
        self._advance(2)
        depth = 1
        while depth:
            if not self._peek():
                raise LexError(f"unterminated comment starting at {start}")
            if self._peek() == "(" and self._peek(1) == "*":
                depth += 1
                self._advance(2)
            elif self._peek() == "*" and self._peek(1) == ")":
                depth -= 1
                self._advance(2)
            else:
                self._advance()

    def _block_delimiter(self, pos: Pos) -> Optional[Token]:
        ch = self._peek()
        nxt = self._peek(1)
        if ch == "{" and nxt in ("t", "s") and not _is_ident_char(self._peek(2)):
            self._advance(2)
            kind = TokKind.BLOCK_OPEN_T if nxt == "t" else TokKind.BLOCK_OPEN_S
            return Token(kind, "{" + nxt, pos)
        if ch in ("t", "s") and nxt == "}" and not _is_ident_char(self._peek(2)):
            # Only a block close if `t`/`s` is a standalone word here; a
            # longer identifier like `cost}` must lex as ident + `}`.
            self._advance(2)
            kind = TokKind.BLOCK_CLOSE_T if ch == "t" else TokKind.BLOCK_CLOSE_S
            return Token(kind, ch + "}", pos)
        return None

    def _number(self, pos: Pos) -> Optional[Token]:
        if not self._peek().isdigit():
            return None
        start = self._i
        while self._peek().isdigit():
            self._advance()
        return Token(TokKind.INT, self._src[start : self._i], pos)

    def _string(self, pos: Pos) -> Optional[Token]:
        if self._peek() != '"':
            return None
        self._advance()
        chars: list[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexError(f"unterminated string literal at {pos}")
            if ch == '"':
                self._advance()
                return Token(TokKind.STRING, "".join(chars), pos)
            if ch == "\\":
                self._advance()
                escape = self._peek()
                mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                if escape not in mapping:
                    raise LexError(f"bad escape \\{escape} at {self._pos()}")
                chars.append(mapping[escape])
                self._advance()
            else:
                chars.append(ch)
                self._advance()

    def _word(self, pos: Pos) -> Optional[Token]:
        ch = self._peek()
        if not (ch.isalpha() or ch == "_"):
            return None
        start = self._i
        while _is_ident_char(self._peek()):
            self._advance()
        text = self._src[start : self._i]
        kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
        return Token(kind, text, pos)

    def _symbol(self, pos: Pos) -> Optional[Token]:
        for sym in SYMBOLS:
            if self._src.startswith(sym, self._i):
                self._advance(len(sym))
                return Token(TokKind.SYMBOL, sym, pos)
        return None


def _is_ident_char(ch: str) -> bool:
    return bool(ch) and (ch.isalnum() or ch == "_" or ch == "'")
