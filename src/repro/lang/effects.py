"""A minimal effect analysis for typed blocks.

The paper (§3.2, "Why Mix?"): "if we were to use a type and effect
system rather than just a type system, we could avoid introducing a
completely fresh memory μ' in SETypBlock — instead, we could find the
effect of e and limit applying this 'havoc' operation only to locations
that could have been changed."

This module implements the coarsest useful version of that idea: a
syntactic *write effect*.  An expression may write memory iff it
contains an assignment, or an application (the callee could be a closure
that writes).  Allocation (``ref``) and reads (``!``) are not write
effects — fresh cells cannot alias existing ones, so keeping the current
memory across an allocating-but-non-writing block is sound.

When ``MixConfig.effect_aware_havoc`` is set, rule SETypBlock consults
:func:`may_write` and skips the havoc for write-free blocks, preserving
the symbolic memory across the boundary.
"""

from __future__ import annotations

from repro.lang.ast import App, Assign, Expr, Fun, children


def may_write(expr: Expr) -> bool:
    """Conservative write effect: could evaluating ``expr`` change any
    existing memory location?"""
    if isinstance(expr, Assign):
        return True
    if isinstance(expr, App):
        # The callee may be (or return) a closure whose body writes; a
        # type system without effects cannot rule that out.
        return True
    if isinstance(expr, Fun):
        # Evaluating a function literal performs no writes; its body runs
        # only at an application, which the App case already flags.
        return False
    return any(may_write(child) for child in children(expr))
