"""Pretty-printer for the MIX source language.

``parse(pretty(e))`` is structurally equal to ``e`` (tested by a
round-trip property test), which makes the printer usable for
diagnostics and for serializing generated programs.
"""

from __future__ import annotations

from repro.lang.ast import (
    App,
    Assign,
    Assume,
    BinOp,
    BoolLit,
    Check,
    Deref,
    Expr,
    Fun,
    If,
    IntLit,
    Let,
    Not,
    Ref,
    Seq,
    StrLit,
    SymBlock,
    Symbolic,
    TypedBlock,
    UnitLit,
    Var,
    While,
)

# Precedence levels mirror the parser grammar; a child is parenthesized
# when its level is looser than its context requires.
_LEVEL_EXPR = 0  # let / fun / if / while / seq
_LEVEL_ASSIGN = 1
_LEVEL_OR = 2
_LEVEL_AND = 3
_LEVEL_CMP = 4
_LEVEL_ADD = 5
_LEVEL_MUL = 6
_LEVEL_UNARY = 7
_LEVEL_APP = 8
_LEVEL_ATOM = 9

_BINOP_LEVEL = {
    "||": _LEVEL_OR,
    "&&": _LEVEL_AND,
    "=": _LEVEL_CMP,
    "<": _LEVEL_CMP,
    "<=": _LEVEL_CMP,
    "+": _LEVEL_ADD,
    "-": _LEVEL_ADD,
    "*": _LEVEL_MUL,
    "/": _LEVEL_MUL,
}


def pretty(expr: Expr) -> str:
    """Render ``expr`` in concrete syntax."""
    return _render(expr, _LEVEL_EXPR)


def _parens(text: str, context: int, node_level: int) -> str:
    return f"({text})" if node_level < context else text


def _render(expr: Expr, context: int) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, IntLit):
        if expr.value < 0:
            # A negative literal reads as unary minus, so it needs parens
            # anywhere tighter than unary (e.g. application: `f (-1)`).
            return _parens(str(expr.value), context, _LEVEL_UNARY)
        return str(expr.value)
    if isinstance(expr, BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, StrLit):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    if isinstance(expr, UnitLit):
        return "()"
    if isinstance(expr, BinOp):
        level = _BINOP_LEVEL[expr.op.value]
        # Comparisons are non-associative (both operands must be tighter);
        # arithmetic and boolean chains associate left.
        left_level = level + 1 if level == _LEVEL_CMP else level
        left = _render(expr.left, left_level)
        right = _render(expr.right, level + 1)
        return _parens(f"{left} {expr.op.value} {right}", context, level)
    if isinstance(expr, Not):
        return _parens(f"not {_render(expr.operand, _LEVEL_UNARY)}", context, _LEVEL_UNARY)
    if isinstance(expr, Ref):
        return _parens(f"ref {_render(expr.init, _LEVEL_UNARY)}", context, _LEVEL_UNARY)
    if isinstance(expr, Deref):
        return _parens(f"!{_render(expr.ref, _LEVEL_UNARY)}", context, _LEVEL_UNARY)
    if isinstance(expr, Assign):
        target = _render(expr.target, _LEVEL_ASSIGN + 1)
        value = _render(expr.value, _LEVEL_ASSIGN)
        return _parens(f"{target} := {value}", context, _LEVEL_ASSIGN)
    if isinstance(expr, Seq):
        first = _render(expr.first, _LEVEL_ASSIGN)
        second = _render(expr.second, _LEVEL_EXPR)
        return _parens(f"{first}; {second}", context, _LEVEL_EXPR)
    if isinstance(expr, If):
        text = (
            f"if {_render(expr.cond, _LEVEL_EXPR)} "
            f"then {_render(expr.then, _LEVEL_EXPR)} "
            f"else {_render(expr.els, _LEVEL_EXPR)}"
        )
        return _parens(text, context, _LEVEL_EXPR)
    if isinstance(expr, Let):
        annot = f" : {expr.annotation}" if expr.annotation is not None else ""
        text = (
            f"let {expr.name}{annot} = {_render(expr.bound, _LEVEL_EXPR)} "
            f"in {_render(expr.body, _LEVEL_EXPR)}"
        )
        return _parens(text, context, _LEVEL_EXPR)
    if isinstance(expr, Fun):
        from repro.typecheck.types import FunType

        annot = str(expr.param_type)
        if isinstance(expr.param_type, FunType):
            annot = f"({annot})"  # the bare arrow would start the body
        text = f"fun {expr.param} : {annot} -> {_render(expr.body, _LEVEL_EXPR)}"
        return _parens(text, context, _LEVEL_EXPR)
    if isinstance(expr, While):
        text = (
            f"while {_render(expr.cond, _LEVEL_EXPR)} "
            f"do {_render(expr.body, _LEVEL_EXPR)} done"
        )
        return _parens(text, context, _LEVEL_EXPR)
    if isinstance(expr, App):
        fn = _render(expr.fn, _LEVEL_APP)
        arg = _render(expr.arg, _LEVEL_ATOM)
        return _parens(f"{fn} {arg}", context, _LEVEL_APP)
    if isinstance(expr, TypedBlock):
        return f"typed {{ {_render(expr.body, _LEVEL_EXPR)} }}"
    if isinstance(expr, SymBlock):
        return f"sym {{ {_render(expr.body, _LEVEL_EXPR)} }}"
    if isinstance(expr, Symbolic):
        return "symbolic()"
    if isinstance(expr, Assume):
        return f"assume({_render(expr.cond, _LEVEL_EXPR)})"
    if isinstance(expr, Check):
        return f"check({_render(expr.cond, _LEVEL_EXPR)})"
    raise TypeError(f"unknown expression node: {expr!r}")
