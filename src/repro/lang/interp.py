"""Big-step concrete semantics ``E ⊢ ⟨M; e⟩ → r`` (paper Section 3.3).

The evaluation result ``r`` is either a memory/value pair or the
distinguished ``error`` token; here a dynamic type error raises
:class:`RuntimeTypeError`, which plays the role of ``error``.  Typed and
symbolic blocks are transparent at run time — they only direct the static
analyses.

This interpreter is the ground truth for the soundness theorem: the
differential test suite checks that programs accepted by MIX never
evaluate to ``error`` and produce values of the predicted type.

Division is total with ``x / 0 = 0`` (the SMT-LIB convention), so that
well-typed programs cannot fail at run time for reasons the type system
does not track.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Union

from repro.lang.ast import (
    App,
    Assign,
    Assume,
    BinOp,
    BinOpKind,
    BoolLit,
    Check,
    Deref,
    Expr,
    Fun,
    If,
    IntLit,
    Let,
    Not,
    Ref,
    Seq,
    StrLit,
    SymBlock,
    Symbolic,
    TypedBlock,
    UnitLit,
    Var,
    While,
)


class RuntimeTypeError(Exception):
    """The paper's ``error`` result: a dynamic type mismatch."""


class EvalBudgetExceeded(Exception):
    """The step budget ran out (used to bound ``while`` in testing)."""


class AssumeViolation(Exception):
    """A concrete run reached ``assume(e)`` with ``e`` false — the run is
    vacuous, neither a pass nor a failure."""


class CheckFailure(Exception):
    """A concrete run reached ``check(e)`` with ``e`` false — the
    property concretely fails on this input."""


@dataclass(frozen=True)
class Location:
    """A heap location; fresh per allocation."""

    address: int

    def __str__(self) -> str:
        return f"loc#{self.address}"


@dataclass(frozen=True)
class Closure:
    """A function value: parameter, body, and captured environment."""

    param: str
    body: Expr
    env: Mapping[str, "Value"]

    def __str__(self) -> str:
        return f"<fun {self.param}>"


Value = Union[int, bool, str, None, Location, Closure]
# ``None`` is the unit value.  Python ``bool`` is a subtype of ``int``, so
# all type tests below check ``bool`` first.


@dataclass
class ConcreteResult:
    """A successful evaluation ⟨M'; v⟩."""

    value: Value
    memory: dict[Location, Value]


class Interpreter:
    """Evaluates expressions under an environment and mutable memory."""

    def __init__(
        self,
        step_budget: int = 100_000,
        symbolic_inputs: Optional[list[int]] = None,
    ) -> None:
        self._memory: dict[Location, Value] = {}
        self._next_address = 0
        self._steps_left = step_budget
        #: values ``symbolic()`` draws, in program order; 0 once drained.
        #: Witness replay fills this from the counterexample model.
        self._symbolic_inputs = list(symbolic_inputs or [])

    @property
    def memory(self) -> dict[Location, Value]:
        return self._memory

    def allocate(self, value: Value) -> Location:
        loc = Location(self._next_address)
        self._next_address += 1
        self._memory[loc] = value
        return loc

    def eval(self, expr: Expr, env: Mapping[str, Value]) -> Value:
        self._steps_left -= 1
        if self._steps_left < 0:
            raise EvalBudgetExceeded()
        method: Callable = _DISPATCH[type(expr)]
        return method(self, expr, env)

    # -- node handlers ---------------------------------------------------------

    def _var(self, expr: Var, env: Mapping[str, Value]) -> Value:
        if expr.name not in env:
            raise RuntimeTypeError(f"unbound variable {expr.name}")
        return env[expr.name]

    def _int(self, expr: IntLit, env: Mapping[str, Value]) -> Value:
        return expr.value

    def _bool(self, expr: BoolLit, env: Mapping[str, Value]) -> Value:
        return expr.value

    def _str(self, expr: StrLit, env: Mapping[str, Value]) -> Value:
        return expr.value

    def _unit(self, expr: UnitLit, env: Mapping[str, Value]) -> Value:
        return None

    def _binop(self, expr: BinOp, env: Mapping[str, Value]) -> Value:
        op = expr.op
        if op in (BinOpKind.AND, BinOpKind.OR):
            # Strict, as in the paper's SEAnd rule: both subexpressions are
            # evaluated (no short-circuiting), so the static analyses and
            # the concrete semantics agree on which errors are reachable.
            left = self._expect_bool(self.eval(expr.left, env), op.value)
            right = self._expect_bool(self.eval(expr.right, env), op.value)
            return (left and right) if op is BinOpKind.AND else (left or right)
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if op is BinOpKind.EQ:
            return self._equal(left, right)
        if op in (BinOpKind.LT, BinOpKind.LE):
            li = self._expect_int(left, op.value)
            ri = self._expect_int(right, op.value)
            return li < ri if op is BinOpKind.LT else li <= ri
        li = self._expect_int(left, op.value)
        ri = self._expect_int(right, op.value)
        if op is BinOpKind.ADD:
            return li + ri
        if op is BinOpKind.SUB:
            return li - ri
        if op is BinOpKind.MUL:
            return li * ri
        if op is BinOpKind.DIV:
            return 0 if ri == 0 else _int_div(li, ri)
        raise AssertionError(f"unhandled operator {op}")

    def _equal(self, left: Value, right: Value) -> bool:
        # Equality is permitted at base and reference types; comparing a
        # function is a dynamic type error, and comparing values of
        # different types is a type error (the static systems agree).
        if isinstance(left, Closure) or isinstance(right, Closure):
            raise RuntimeTypeError("cannot compare functions")
        if _runtime_type(left) != _runtime_type(right):
            raise RuntimeTypeError(
                f"'=' applied to {_runtime_type(left)} and {_runtime_type(right)}"
            )
        return left == right

    def _not(self, expr: Not, env: Mapping[str, Value]) -> Value:
        return not self._expect_bool(self.eval(expr.operand, env), "not")

    def _if(self, expr: If, env: Mapping[str, Value]) -> Value:
        cond = self._expect_bool(self.eval(expr.cond, env), "if")
        return self.eval(expr.then if cond else expr.els, env)

    def _let(self, expr: Let, env: Mapping[str, Value]) -> Value:
        bound = self.eval(expr.bound, env)
        child = dict(env)
        child[expr.name] = bound
        return self.eval(expr.body, child)

    def _seq(self, expr: Seq, env: Mapping[str, Value]) -> Value:
        self.eval(expr.first, env)
        return self.eval(expr.second, env)

    def _ref(self, expr: Ref, env: Mapping[str, Value]) -> Value:
        return self.allocate(self.eval(expr.init, env))

    def _deref(self, expr: Deref, env: Mapping[str, Value]) -> Value:
        target = self.eval(expr.ref, env)
        if not isinstance(target, Location):
            raise RuntimeTypeError(f"dereference of non-reference {target!r}")
        return self._memory[target]

    def _assign(self, expr: Assign, env: Mapping[str, Value]) -> Value:
        target = self.eval(expr.target, env)
        if not isinstance(target, Location):
            raise RuntimeTypeError(f"assignment through non-reference {target!r}")
        value = self.eval(expr.value, env)
        self._memory[target] = value
        return value

    def _while(self, expr: While, env: Mapping[str, Value]) -> Value:
        while self._expect_bool(self.eval(expr.cond, env), "while"):
            self.eval(expr.body, env)
        return None

    def _fun(self, expr: Fun, env: Mapping[str, Value]) -> Value:
        return Closure(expr.param, expr.body, dict(env))

    def _app(self, expr: App, env: Mapping[str, Value]) -> Value:
        fn = self.eval(expr.fn, env)
        arg = self.eval(expr.arg, env)
        if not isinstance(fn, Closure):
            raise RuntimeTypeError(f"application of non-function {fn!r}")
        child = dict(fn.env)
        child[fn.param] = arg
        return self.eval(fn.body, child)

    def _block(self, expr: Union[TypedBlock, SymBlock], env: Mapping[str, Value]) -> Value:
        return self.eval(expr.body, env)

    def _symbolic(self, expr: Symbolic, env: Mapping[str, Value]) -> Value:
        if self._symbolic_inputs:
            return self._symbolic_inputs.pop(0)
        return 0

    def _assume(self, expr: Assume, env: Mapping[str, Value]) -> Value:
        if not self._expect_bool(self.eval(expr.cond, env), "assume"):
            raise AssumeViolation(f"assumption false at {expr.pos or '?'}")
        return None

    def _check(self, expr: Check, env: Mapping[str, Value]) -> Value:
        if not self._expect_bool(self.eval(expr.cond, env), "check"):
            raise CheckFailure(f"check failed at {expr.pos or '?'}")
        return None

    # -- dynamic type checks -----------------------------------------------------

    def _expect_bool(self, value: Value, context: str) -> bool:
        if not isinstance(value, bool):
            raise RuntimeTypeError(f"{context} applied to non-boolean {value!r}")
        return value

    def _expect_int(self, value: Value, context: str) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise RuntimeTypeError(f"{context!r} applied to non-integer {value!r}")
        return value


def _int_div(a: int, b: int) -> int:
    """Truncating division (rounds toward zero), as in C and SMT-LIB."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _runtime_type(value: Value) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, str):
        return "str"
    if value is None:
        return "unit"
    if isinstance(value, Location):
        return "ref"
    return "fun"


_DISPATCH: dict[type, Callable] = {
    Var: Interpreter._var,
    IntLit: Interpreter._int,
    BoolLit: Interpreter._bool,
    StrLit: Interpreter._str,
    UnitLit: Interpreter._unit,
    BinOp: Interpreter._binop,
    Not: Interpreter._not,
    If: Interpreter._if,
    Let: Interpreter._let,
    Seq: Interpreter._seq,
    Ref: Interpreter._ref,
    Deref: Interpreter._deref,
    Assign: Interpreter._assign,
    While: Interpreter._while,
    Fun: Interpreter._fun,
    App: Interpreter._app,
    TypedBlock: Interpreter._block,
    SymBlock: Interpreter._block,
    Symbolic: Interpreter._symbolic,
    Assume: Interpreter._assume,
    Check: Interpreter._check,
}


def run(
    expr: Expr,
    env: Optional[Mapping[str, Value]] = None,
    step_budget: int = 100_000,
) -> ConcreteResult:
    """Evaluate a program; raises :class:`RuntimeTypeError` on ``error``."""
    interp = Interpreter(step_budget=step_budget)
    value = interp.eval(expr, dict(env or {}))
    return ConcreteResult(value, interp.memory)
