"""Abstract syntax for the MIX source language (paper Figure 1).

Every node is an immutable dataclass.  ``pos`` carries the source
location when the node came from the parser (``None`` for programmatically
built trees) and is excluded from equality so that structurally identical
programs compare equal regardless of provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Optional

from repro.typecheck.types import Type


@dataclass(frozen=True)
class Pos:
    """A source position (1-based line and column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Expr:
    """Base class of all expression nodes."""

    pos: Optional[Pos] = field(default=None, compare=False, kw_only=True)


@unique
class BinOpKind(Enum):
    """Binary operators.

    The paper's Figure 1 has ``+``, ``=``, and ``/\\``; the rest are the
    natural completions used by the Section 2 examples.
    """

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    EQ = "="
    LT = "<"
    LE = "<="
    AND = "&&"
    OR = "||"


@dataclass(frozen=True)
class Var(Expr):
    name: str


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class StrLit(Expr):
    value: str


@dataclass(frozen=True)
class UnitLit(Expr):
    pass


@dataclass(frozen=True)
class BinOp(Expr):
    op: BinOpKind
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True)
class If(Expr):
    cond: Expr
    then: Expr
    els: Expr


@dataclass(frozen=True)
class Let(Expr):
    name: str
    bound: Expr
    body: Expr
    annotation: Optional[Type] = None


@dataclass(frozen=True)
class Seq(Expr):
    """``e1; e2`` — evaluate ``e1`` for effect, then ``e2``."""

    first: Expr
    second: Expr


@dataclass(frozen=True)
class Ref(Expr):
    """``ref e`` — allocate a fresh cell holding ``e``."""

    init: Expr


@dataclass(frozen=True)
class Deref(Expr):
    """``!e`` — read through a reference."""

    ref: Expr


@dataclass(frozen=True)
class Assign(Expr):
    """``e1 := e2`` — write through a reference; evaluates to the value."""

    target: Expr
    value: Expr


@dataclass(frozen=True)
class While(Expr):
    """``while e do e done`` — evaluates to unit (extension)."""

    cond: Expr
    body: Expr


@dataclass(frozen=True)
class Fun(Expr):
    """``fun x: t -> e`` — a function literal (extension).

    The parameter annotation is required so the standard (non-inferring)
    type checker of Section 3.1 stays a checker.
    """

    param: str
    param_type: Type
    body: Expr


@dataclass(frozen=True)
class App(Expr):
    """Function application ``f x`` (extension)."""

    fn: Expr
    arg: Expr


@dataclass(frozen=True)
class Symbolic(Expr):
    """``symbolic()`` — an unconstrained symbolic integer input.

    Under symbolic execution this is a fresh α; under concrete
    evaluation it draws the next value from the interpreter's input
    feed (0 when the feed is exhausted) — which is exactly how a
    counterexample model is replayed."""


@dataclass(frozen=True)
class Assume(Expr):
    """``assume(e)`` — constrain the current path with ``e``.

    Paths violating the assumption are silently closed (they are not
    errors and do not count against exhaustiveness); evaluates to unit.
    """

    cond: Expr


@dataclass(frozen=True)
class Check(Expr):
    """``check(e)`` — assert the property ``e`` on the current path.

    A feasible path falsifying ``e`` is a diagnosable property failure;
    evaluates to unit."""

    cond: Expr


@dataclass(frozen=True)
class TypedBlock(Expr):
    """``{t e t}`` — analyze ``e`` with the type checker."""

    body: Expr


@dataclass(frozen=True)
class SymBlock(Expr):
    """``{s e s}`` — analyze ``e`` with the symbolic executor."""

    body: Expr


def free_vars(expr: Expr) -> frozenset[str]:
    """The free program variables of ``expr``."""
    if isinstance(expr, Var):
        return frozenset({expr.name})
    if isinstance(expr, Let):
        return free_vars(expr.bound) | (free_vars(expr.body) - {expr.name})
    if isinstance(expr, Fun):
        return free_vars(expr.body) - {expr.param}
    out: frozenset[str] = frozenset()
    for child in children(expr):
        out |= free_vars(child)
    return out


def children(expr: Expr) -> tuple[Expr, ...]:
    """Direct subexpressions of ``expr``, in evaluation order."""
    if isinstance(expr, BinOp):
        return (expr.left, expr.right)
    if isinstance(expr, Not):
        return (expr.operand,)
    if isinstance(expr, If):
        return (expr.cond, expr.then, expr.els)
    if isinstance(expr, Let):
        return (expr.bound, expr.body)
    if isinstance(expr, Seq):
        return (expr.first, expr.second)
    if isinstance(expr, Ref):
        return (expr.init,)
    if isinstance(expr, Deref):
        return (expr.ref,)
    if isinstance(expr, Assign):
        return (expr.target, expr.value)
    if isinstance(expr, While):
        return (expr.cond, expr.body)
    if isinstance(expr, Fun):
        return (expr.body,)
    if isinstance(expr, App):
        return (expr.fn, expr.arg)
    if isinstance(expr, (TypedBlock, SymBlock)):
        return (expr.body,)
    if isinstance(expr, (Assume, Check)):
        return (expr.cond,)
    return ()


def block_count(expr: Expr) -> tuple[int, int]:
    """(number of typed blocks, number of symbolic blocks) in ``expr``."""
    typed = 1 if isinstance(expr, TypedBlock) else 0
    symbolic = 1 if isinstance(expr, SymBlock) else 0
    for child in children(expr):
        t, s = block_count(child)
        typed += t
        symbolic += s
    return typed, symbolic
