"""The MIX source language (Figure 1 of the paper) and its tooling.

The language is a small ML-like imperative calculus: integers, booleans,
arithmetic and boolean operators, conditionals, ``let``, updatable
references (``ref`` / ``!`` / ``:=``), and the two analysis-switching
block forms — typed blocks ``{t e t}`` and symbolic blocks ``{s e s}``.

Extensions beyond the paper's Figure 1, each motivated by an example in
the paper's Section 2: string literals (the ``"foo" + 3`` false positive),
``unit`` and sequencing, ``while`` loops (the "helping symbolic execution"
idiom), and first-class functions (the context-sensitivity idioms).

Submodules:

- :mod:`repro.lang.ast` -- expression nodes and values;
- :mod:`repro.lang.lexer` / :mod:`repro.lang.parser` -- concrete syntax;
- :mod:`repro.lang.pretty` -- pretty-printer (inverse of the parser);
- :mod:`repro.lang.interp` -- the big-step concrete semantics used as the
  ground truth for soundness (Theorem 1).
"""

from repro.lang.ast import (
    App,
    Assign,
    BinOp,
    BoolLit,
    Deref,
    Expr,
    Fun,
    If,
    IntLit,
    Let,
    Not,
    Ref,
    Seq,
    StrLit,
    SymBlock,
    TypedBlock,
    UnitLit,
    Var,
    While,
)
from repro.lang.interp import (
    ConcreteResult,
    EvalBudgetExceeded,
    Interpreter,
    RuntimeTypeError,
    run,
)
from repro.lang.parser import ParseError, parse
from repro.lang.pretty import pretty

__all__ = [
    "App",
    "Assign",
    "BinOp",
    "BoolLit",
    "ConcreteResult",
    "Deref",
    "EvalBudgetExceeded",
    "Expr",
    "Fun",
    "If",
    "IntLit",
    "Interpreter",
    "Let",
    "Not",
    "ParseError",
    "Ref",
    "RuntimeTypeError",
    "Seq",
    "StrLit",
    "SymBlock",
    "TypedBlock",
    "UnitLit",
    "Var",
    "While",
    "parse",
    "pretty",
    "run",
]
