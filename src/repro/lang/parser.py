"""Recursive-descent parser for the MIX source language.

Grammar (low to high precedence)::

    expr     := 'let' ident (':' type)? '=' expr 'in' expr
              | 'fun' ident ':' type '->' expr
              | 'if' expr 'then' expr 'else' expr
              | 'while' expr 'do' expr 'done'
              | seq
    seq      := assign (';' expr)?
    assign   := or (':=' assign)?
    or       := and ('||' and)*
    and      := cmp ('&&' cmp)*
    cmp      := add (('=' | '<' | '<=') add)?
    add      := mul (('+' | '-') mul)*
    mul      := unary (('*' | '/') unary)*
    unary    := ('not' | '!' | 'ref' | '-') unary | app
    app      := atom atom*
    atom     := INT | STRING | 'true' | 'false' | ident
              | '(' ')' | '(' expr ')'
              | '{t' expr 't}' | '{s' expr 's}'
              | 'typed' '{' expr '}' | 'sym' '{' expr '}'
              | 'symbolic' '(' ')' | 'assume' '(' expr ')'
              | 'check' '(' expr ')'

    type     := reftype ('->' type)?
    reftype  := basetype 'ref'*
    basetype := 'int' | 'bool' | 'str' | 'unit' | '(' type ')'
"""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import (
    App,
    Assign,
    Assume,
    BinOp,
    BinOpKind,
    BoolLit,
    Check,
    Deref,
    Expr,
    Fun,
    If,
    IntLit,
    Let,
    Not,
    Pos,
    Ref,
    Seq,
    StrLit,
    SymBlock,
    Symbolic,
    TypedBlock,
    UnitLit,
    Var,
    While,
)
from repro.lang.lexer import TokKind, Token, tokenize
from repro.typecheck.types import BOOL, INT, STR, UNIT, FunType, RefType, Type


class ParseError(SyntaxError):
    """Raised on syntactically invalid programs."""


def parse(source: str) -> Expr:
    """Parse a complete program into an expression tree."""
    parser = _Parser(tokenize(source))
    expr = parser.expr()
    parser.expect_eof()
    return expr


def parse_type(source: str) -> Type:
    """Parse a type in concrete syntax (e.g. ``"int ref -> bool"``)."""
    parser = _Parser(tokenize(source))
    typ = parser.type_()
    parser.expect_eof()
    return typ


_CMP_OPS = {"=": BinOpKind.EQ, "<": BinOpKind.LT, "<=": BinOpKind.LE}
_ADD_OPS = {"+": BinOpKind.ADD, "-": BinOpKind.SUB}
_MUL_OPS = {"*": BinOpKind.MUL, "/": BinOpKind.DIV}

# Tokens that may start an atom — used to decide whether application
# (juxtaposition) continues.
_ATOM_STARTERS_KW = {"true", "false", "typed", "sym", "symbolic", "assume", "check"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._i = 0

    # -- token plumbing --------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._i]

    def _next(self) -> Token:
        token = self._tokens[self._i]
        if token.kind is not TokKind.EOF:
            self._i += 1
        return token

    def _at_symbol(self, text: str) -> bool:
        token = self._peek()
        return token.kind is TokKind.SYMBOL and token.text == text

    def _at_keyword(self, text: str) -> bool:
        token = self._peek()
        return token.kind is TokKind.KEYWORD and token.text == text

    def _eat_symbol(self, text: str) -> bool:
        if self._at_symbol(text):
            self._next()
            return True
        return False

    def _expect_symbol(self, text: str) -> Token:
        if not self._at_symbol(text):
            raise ParseError(f"expected {text!r}, found {self._peek()}")
        return self._next()

    def _expect_keyword(self, text: str) -> Token:
        if not self._at_keyword(text):
            raise ParseError(f"expected keyword {text!r}, found {self._peek()}")
        return self._next()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokKind.IDENT:
            raise ParseError(f"expected identifier, found {token}")
        return self._next()

    def expect_eof(self) -> None:
        token = self._peek()
        if token.kind is not TokKind.EOF:
            raise ParseError(f"trailing input at {token.pos}: {token}")

    # -- expressions ------------------------------------------------------------

    def expr(self) -> Expr:
        token = self._peek()
        if token.kind is TokKind.KEYWORD:
            if token.text == "let":
                return self._let()
            if token.text == "fun":
                return self._fun()
            if token.text == "if":
                return self._if()
        return self._seq()

    def _let(self) -> Expr:
        pos = self._expect_keyword("let").pos
        name = self._expect_ident().text
        annotation: Optional[Type] = None
        if self._eat_symbol(":"):
            annotation = self.type_()
        self._expect_symbol("=")
        bound = self.expr()
        self._expect_keyword("in")
        body = self.expr()
        return Let(name, bound, body, annotation, pos=pos)

    def _fun(self) -> Expr:
        pos = self._expect_keyword("fun").pos
        name = self._expect_ident().text
        self._expect_symbol(":")
        # The annotation stops before '->' (which introduces the body), so
        # function-typed parameters must be written parenthesized:
        # ``fun f : (int -> int) -> ...``.
        param_type = self._ref_type()
        self._expect_symbol("->")
        body = self.expr()
        return Fun(name, param_type, body, pos=pos)

    def _if(self) -> Expr:
        pos = self._expect_keyword("if").pos
        cond = self.expr()
        self._expect_keyword("then")
        then = self.expr()
        self._expect_keyword("else")
        els = self.expr()
        return If(cond, then, els, pos=pos)

    def _while(self) -> Expr:
        pos = self._expect_keyword("while").pos
        cond = self.expr()
        self._expect_keyword("do")
        body = self.expr()
        self._expect_keyword("done")
        return While(cond, body, pos=pos)

    def _seq(self) -> Expr:
        # ``while .. done`` is self-delimiting, so it can be followed by
        # ``;`` — it lives at the sequence level, unlike let/if/fun which
        # extend maximally to the right.
        first = self._while() if self._at_keyword("while") else self._assign()
        if self._at_symbol(";"):
            pos = self._next().pos
            return Seq(first, self.expr(), pos=pos)
        return first

    def _assign(self) -> Expr:
        target = self._or()
        if self._at_symbol(":="):
            pos = self._next().pos
            return Assign(target, self._assign(), pos=pos)
        return target

    def _or(self) -> Expr:
        left = self._and()
        while self._at_symbol("||"):
            pos = self._next().pos
            left = BinOp(BinOpKind.OR, left, self._and(), pos=pos)
        return left

    def _and(self) -> Expr:
        left = self._cmp()
        while self._at_symbol("&&"):
            pos = self._next().pos
            left = BinOp(BinOpKind.AND, left, self._cmp(), pos=pos)
        return left

    def _cmp(self) -> Expr:
        left = self._add()
        token = self._peek()
        if token.kind is TokKind.SYMBOL and token.text in _CMP_OPS:
            self._next()
            return BinOp(_CMP_OPS[token.text], left, self._add(), pos=token.pos)
        return left

    def _add(self) -> Expr:
        left = self._mul()
        while True:
            token = self._peek()
            if token.kind is TokKind.SYMBOL and token.text in _ADD_OPS:
                self._next()
                left = BinOp(_ADD_OPS[token.text], left, self._mul(), pos=token.pos)
            else:
                return left

    def _mul(self) -> Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind is TokKind.SYMBOL and token.text in _MUL_OPS:
                self._next()
                left = BinOp(_MUL_OPS[token.text], left, self._unary(), pos=token.pos)
            else:
                return left

    def _unary(self) -> Expr:
        token = self._peek()
        if token.kind is TokKind.KEYWORD and token.text == "not":
            pos = self._next().pos
            return Not(self._unary(), pos=pos)
        if token.kind is TokKind.KEYWORD and token.text == "ref":
            pos = self._next().pos
            return Ref(self._unary(), pos=pos)
        if token.kind is TokKind.SYMBOL and token.text == "!":
            pos = self._next().pos
            return Deref(self._unary(), pos=pos)
        if token.kind is TokKind.SYMBOL and token.text == "-":
            pos = self._next().pos
            operand = self._unary()
            if isinstance(operand, IntLit):
                return IntLit(-operand.value, pos=pos)
            return BinOp(BinOpKind.SUB, IntLit(0, pos=pos), operand, pos=pos)
        return self._app()

    def _app(self) -> Expr:
        fn = self._atom()
        while self._starts_atom():
            arg = self._atom()
            fn = App(fn, arg, pos=arg.pos)
        return fn

    def _starts_atom(self) -> bool:
        token = self._peek()
        if token.kind in (
            TokKind.INT,
            TokKind.STRING,
            TokKind.IDENT,
            TokKind.BLOCK_OPEN_T,
            TokKind.BLOCK_OPEN_S,
        ):
            return True
        if token.kind is TokKind.KEYWORD and token.text in _ATOM_STARTERS_KW:
            return True
        return token.kind is TokKind.SYMBOL and token.text == "("

    def _atom(self) -> Expr:
        token = self._next()
        if token.kind is TokKind.INT:
            return IntLit(int(token.text), pos=token.pos)
        if token.kind is TokKind.STRING:
            return StrLit(token.text, pos=token.pos)
        if token.kind is TokKind.IDENT:
            return Var(token.text, pos=token.pos)
        if token.kind is TokKind.KEYWORD:
            if token.text == "true":
                return BoolLit(True, pos=token.pos)
            if token.text == "false":
                return BoolLit(False, pos=token.pos)
            if token.text == "typed":
                self._expect_symbol("{")
                body = self.expr()
                self._expect_symbol("}")
                return TypedBlock(body, pos=token.pos)
            if token.text == "sym":
                self._expect_symbol("{")
                body = self.expr()
                self._expect_symbol("}")
                return SymBlock(body, pos=token.pos)
            if token.text == "symbolic":
                self._expect_symbol("(")
                self._expect_symbol(")")
                return Symbolic(pos=token.pos)
            if token.text in ("assume", "check"):
                self._expect_symbol("(")
                cond = self.expr()
                self._expect_symbol(")")
                node = Assume if token.text == "assume" else Check
                return node(cond, pos=token.pos)
        if token.kind is TokKind.BLOCK_OPEN_T:
            body = self.expr()
            closing = self._next()
            if closing.kind is not TokKind.BLOCK_CLOSE_T:
                raise ParseError(f"expected 't}}' to close typed block, found {closing}")
            return TypedBlock(body, pos=token.pos)
        if token.kind is TokKind.BLOCK_OPEN_S:
            body = self.expr()
            closing = self._next()
            if closing.kind is not TokKind.BLOCK_CLOSE_S:
                raise ParseError(
                    f"expected 's}}' to close symbolic block, found {closing}"
                )
            return SymBlock(body, pos=token.pos)
        if token.kind is TokKind.SYMBOL and token.text == "(":
            if self._eat_symbol(")"):
                return UnitLit(pos=token.pos)
            inner = self.expr()
            self._expect_symbol(")")
            return inner
        raise ParseError(f"unexpected token {token}")

    # -- types -------------------------------------------------------------------

    def type_(self) -> Type:
        left = self._ref_type()
        if self._eat_symbol("->"):
            return FunType(left, self.type_())
        return left

    def _ref_type(self) -> Type:
        typ = self._base_type()
        while self._at_keyword("ref"):
            self._next()
            typ = RefType(typ)
        return typ

    def _base_type(self) -> Type:
        token = self._next()
        if token.kind is TokKind.KEYWORD:
            mapping = {"int": INT, "bool": BOOL, "str": STR, "unit": UNIT}
            if token.text in mapping:
                return mapping[token.text]
        if token.kind is TokKind.SYMBOL and token.text == "(":
            typ = self.type_()
            self._expect_symbol(")")
            return typ
        raise ParseError(f"expected a type, found {token}")
