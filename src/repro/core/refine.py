"""Automatic placement of typed/symbolic blocks by refinement.

The paper's stated future work (§4.6, §5): "One idea is to begin with
just typed blocks and then incrementally add symbolic blocks to refine
the result.  This approach resembles abstraction refinement (e.g., Ball
and Rajamani [2002]; Henzinger et al. [2004]), except the refinement can
be obtained using completely different analyses instead of one
particular family of abstractions."

This module implements that loop in both directions:

- a **typed** failure (a type error at some node) is refined by wrapping
  an enclosing expression in a *symbolic block* — precision is added
  exactly where the coarse abstraction lost it;
- a **symbolic** failure of the `UNSUPPORTED`/`LOOP_BOUND` kinds (an
  unknown function, nonlinear arithmetic, an unbounded loop) is refined
  by wrapping the offending expression in a *typed block* —
  conservative abstraction is added exactly where execution is stuck
  (§2's "Helping Symbolic Execution").

The search is the natural counterexample-guided heuristic: locate the
diagnostic's node, try wrapping each of its ancestors innermost-first,
and keep the first wrap that removes (or strictly reduces) the
diagnostics; iterate until the program is accepted or the budget is
spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import Optional

from repro.core.analysis import Diagnostic, MixReport, analyze
from repro.core.config import MixConfig
from repro.lang.ast import Expr, Pos, SymBlock, TypedBlock, children
from repro.lang.pretty import pretty
from repro.symexec.executor import ErrKind
from repro.typecheck.types import TypeEnv


@dataclass(frozen=True)
class RefinementStep:
    """One accepted refinement: which node was wrapped, and how."""

    block_kind: str  # "symbolic" | "typed"
    wrapped: str  # pretty-printed wrapped expression (for reporting)
    diagnostic: str  # the diagnostic that triggered the step

    def __str__(self) -> str:
        return f"wrap {{{self.block_kind}}} around: {self.wrapped}"


@dataclass
class RefinementResult:
    """Outcome of the automatic placement loop."""

    ok: bool
    program: Expr  # the (possibly) annotated program
    report: MixReport  # the final analysis report
    steps: list[RefinementStep] = field(default_factory=list)

    @property
    def annotated_source(self) -> str:
        return pretty(self.program)


def auto_place_blocks(
    program: Expr,
    env: Optional[TypeEnv] = None,
    entry: str = "typed",
    config: Optional[MixConfig] = None,
    max_steps: int = 8,
) -> RefinementResult:
    """Iteratively insert blocks until the mixed analysis accepts.

    Returns the annotated program and the refinement trace.  ``entry``
    chooses the outermost analysis, exactly as in :func:`analyze`.
    """
    env = env or TypeEnv()
    current = program
    steps: list[RefinementStep] = []
    report = analyze(current, env, entry, config)
    for _ in range(max_steps):
        if report.ok:
            break
        refined = _refine_once(current, env, entry, config, report)
        if refined is None:
            break  # no wrap helps: give up with the best report we have
        current, report, step = refined
        steps.append(step)
    return RefinementResult(report.ok, current, report, steps)


def _refine_once(
    program: Expr,
    env: TypeEnv,
    entry: str,
    config: Optional[MixConfig],
    report: MixReport,
):
    """Try to fix the first diagnostic by wrapping one node."""
    diagnostic = report.diagnostics[0]
    target = _locate(program, diagnostic.pos)
    if target is None:
        target = program
    block_type = _block_for(diagnostic)
    baseline = len(report.diagnostics)
    for candidate in _ancestor_chain(program, target):
        if isinstance(candidate, (TypedBlock, SymBlock)):
            continue  # re-wrapping a block is never productive
        block = block_type(candidate)
        object.__setattr__(block, "pos", candidate.pos)  # keep the location
        wrapped_program = _replace(program, candidate, block)
        new_report = analyze(wrapped_program, env, entry, config)
        # Progress means the triggering diagnostic is gone: either the
        # program is accepted, or the analysis now fails strictly *outside*
        # the wrapped region (the next error to refine).  A failure that is
        # still inside the wrap bought nothing.
        inside = {n.pos for n in _subtree(candidate) if n.pos is not None}
        improved = new_report.ok or (
            len(new_report.diagnostics) < baseline
            or (
                new_report.diagnostics[0].pos is not None
                and new_report.diagnostics[0].pos not in inside
            )
        )
        if improved:
            step = RefinementStep(
                "symbolic" if block_type is SymBlock else "typed",
                pretty(candidate),
                diagnostic.message,
            )
            return wrapped_program, new_report, step
    return None


def _block_for(diagnostic: Diagnostic):
    """Typed failures want precision (symbolic block); stuck symbolic
    execution wants abstraction (typed block)."""
    if diagnostic.origin == "symbolic" and diagnostic.kind in (
        ErrKind.UNSUPPORTED,
        ErrKind.LOOP_BOUND,
    ):
        return TypedBlock
    return SymBlock


def _locate(root: Expr, pos: Optional[Pos]) -> Optional[Expr]:
    """The innermost node carrying exactly this source position."""
    if pos is None:
        return None
    best: Optional[Expr] = None

    def walk(node: Expr) -> None:
        nonlocal best
        if node.pos == pos:
            best = node  # deeper matches overwrite shallower ones
        for child in children(node):
            walk(child)

    walk(root)
    return best


def _ancestor_chain(root: Expr, target: Expr) -> list[Expr]:
    """``target`` and its ancestors, innermost first (identity-based)."""
    chain: list[Expr] = []

    def walk(node: Expr) -> bool:
        if node is target:
            chain.append(node)
            return True
        for child in children(node):
            if walk(child):
                chain.append(node)
                return True
        return False

    walk(root)
    return chain


def _replace(root: Expr, target: Expr, replacement: Expr) -> Expr:
    """Rebuild ``root`` with ``target`` (by identity) replaced."""
    if root is target:
        return replacement
    rebuilt_children = {}
    changed = False
    for name in _child_fields(root):
        value = getattr(root, name)
        if isinstance(value, Expr):
            new_value = _replace(value, target, replacement)
            if new_value is not value:
                changed = True
            rebuilt_children[name] = new_value
    if not changed:
        return root
    return dc_replace(root, **rebuilt_children)


def _subtree(root: Expr) -> list[Expr]:
    out = [root]
    for child in children(root):
        out.extend(_subtree(child))
    return out


def _child_fields(node: Expr) -> list[str]:
    return [
        name
        for name, value in vars(node).items()
        if isinstance(value, Expr) and name != "pos"
    ]
