"""Whole-program driver for the mixed analysis.

The paper "leaves unspecified whether the outermost scope of a program is
treated as a typed block or a symbolic block; MIX can handle either
case."  :func:`analyze` therefore takes an ``entry`` argument:

- ``entry="typed"`` — the program is treated as one enclosing typed
  block: the type checker runs, delegating ``{s ... s}`` regions to the
  symbolic executor (rule TSymBlock).
- ``entry="symbolic"`` — the program is one enclosing symbolic block: the
  executor runs over fresh symbolic inputs, delegating ``{t ... t}``
  regions to the type checker (rule SETypBlock).

Results come back as a :class:`MixReport` rather than an exception so
callers (examples, benchmarks) can compare verdicts across
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from repro import smt
from repro.core.config import MixConfig, SoundnessMode
from repro.core.mix import Mix, MixTypeError
from repro.lang.ast import Expr, Pos, SymBlock
from repro.lang.parser import parse
from repro.symexec.executor import ErrKind
from repro.trace import TRACER
from repro.typecheck.checker import TypeError_
from repro.typecheck.types import Type, TypeEnv

if TYPE_CHECKING:
    from repro.witness import Witness


@dataclass(frozen=True)
class Diagnostic:
    """One reported problem."""

    message: str
    pos: Optional[Pos] = None
    origin: str = "typed"  # "typed" | "symbolic" | "mix"
    kind: Optional[ErrKind] = None
    #: trust ring 1: replay classification (CONFIRMED / UNCONFIRMED /
    #: REPLAY_DIVERGED); None unless MixConfig.validate_witnesses is on.
    witness: Optional["Witness"] = None

    def __str__(self) -> str:
        where = f" at {self.pos}" if self.pos else ""
        rendered = f"[{self.origin}]{where}: {self.message}"
        if self.witness is not None:
            rendered += f" [witness: {self.witness}]"
        return rendered


@dataclass
class MixReport:
    """The outcome of analyzing one program."""

    ok: bool
    type: Optional[Type] = None
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: non-fatal degradation notices (e.g. budget breaches in
    #: good-enough mode); the program is still accepted
    warnings: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    paths: int = 0

    def __str__(self) -> str:
        if self.ok:
            return f"accepted: {self.type}"
        inner = "; ".join(str(d) for d in self.diagnostics)
        return f"rejected: {inner}"


def analyze(
    program: Expr,
    env: Optional[TypeEnv] = None,
    entry: str = "typed",
    config: Optional[MixConfig] = None,
) -> MixReport:
    """Run MIX over ``program``; never raises on analysis findings."""
    mix = Mix(config=config)
    env = env or TypeEnv()
    svc = smt.get_service().stats
    queries0, hits0, solves0 = svc.queries, svc.cache_hits, svc.full_solves
    with TRACER.span("run", f"mix:{entry}"):
        if entry == "typed":
            report = _analyze_typed(mix, program, env)
        elif entry == "symbolic":
            report = _analyze_symbolic(mix, program, env)
        else:
            raise ValueError(f"entry must be 'typed' or 'symbolic', got {entry!r}")
    report.warnings = list(mix.warnings)
    report.stats = dict(mix.stats)
    report.stats.update({f"sym_{k}": v for k, v in mix.executor.stats.items()})
    # Per-analysis deltas of the shared solver service counters.
    report.stats["smt_queries"] = svc.queries - queries0
    report.stats["smt_cache_hits"] = svc.cache_hits - hits0
    report.stats["smt_full_solves"] = svc.full_solves - solves0
    return report


def analyze_source(
    source: str,
    env: Optional[TypeEnv] = None,
    entry: str = "typed",
    config: Optional[MixConfig] = None,
) -> MixReport:
    """Parse and analyze a program given in concrete syntax."""
    return analyze(parse(source), env, entry, config)


def _analyze_typed(mix: Mix, program: Expr, env: TypeEnv) -> MixReport:
    try:
        typ = mix.checker.check(program, env)
    except MixTypeError as error:
        return MixReport(
            ok=False,
            diagnostics=[
                Diagnostic(
                    error.message, error.pos, error.origin, error.kind,
                    witness=error.witness,
                )
            ],
        )
    except TypeError_ as error:
        return MixReport(
            ok=False, diagnostics=[Diagnostic(error.message, error.pos, "typed")]
        )
    return MixReport(ok=True, type=typ)


def _analyze_symbolic(mix: Mix, program: Expr, env: TypeEnv) -> MixReport:
    # Treat the whole program as one symbolic block over fresh inputs.
    block = SymBlock(program, pos=getattr(program, "pos", None))
    try:
        typ = mix._type_symbolic_block(env, block)
    except MixTypeError as error:
        return MixReport(
            ok=False,
            diagnostics=[
                Diagnostic(
                    error.message, error.pos, error.origin, error.kind,
                    witness=error.witness,
                )
            ],
        )
    except TypeError_ as error:
        return MixReport(
            ok=False, diagnostics=[Diagnostic(error.message, error.pos, "typed")]
        )
    return MixReport(ok=True, type=typ)
