"""The two mix rules (paper Figure 4) wiring the analyses together.

The type checker and symbolic executor are instantiated *unmodified*;
each exposes a single hook for the foreign block form, and this module
installs the mix rules into those hooks.  All information exchanged at a
boundary flows through types (typed -> symbolic: ``Σ(x) = α_x : Γ(x)``;
symbolic -> typed: the block's result type and nothing else), exactly the
"thin interface" the paper advertises.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:
    from repro.witness import Witness

from repro import smt
from repro.core.config import MixConfig, SoundnessMode
from repro.lang.ast import Pos, SymBlock, TypedBlock
from repro.symexec.executor import ErrKind, Outcome, State, SymExecutor
from repro.symexec.memory import fresh_memory, memory_ok
from repro.symexec.values import NameSupply, SymEnv, SymValue, fresh_of_type, fun_value, UnknownFun
from repro.trace import TRACER
from repro.typecheck.checker import TypeChecker, TypeError_
from repro.typecheck.types import FunType, Type, TypeEnv


class MixTypeError(TypeError_):
    """A diagnostic produced by the mixed analysis.

    ``origin`` says which engine detected the problem: ``"typed"`` for the
    type checker, ``"symbolic"`` for the symbolic executor, ``"mix"`` for
    the boundary rules themselves (exhaustiveness, memory consistency,
    path blowup).
    """

    def __init__(
        self,
        message: str,
        pos: Optional[Pos] = None,
        origin: str = "mix",
        kind: Optional[ErrKind] = None,
        witness: Optional["Witness"] = None,
    ) -> None:
        super().__init__(message, pos)
        self.origin = origin
        self.kind = kind
        #: trust ring 1: the replay classification of this diagnostic
        #: (present only when MixConfig.validate_witnesses is on)
        self.witness = witness


def _engine_available() -> bool:
    """Whether fork fan-out is possible here.  An analyzer built where
    it is not (inside a pool worker, or on fork-less platforms) must
    take the serial path byte for byte — parallel mode is more than a
    cache warm, it also switches symbol-naming discipline."""
    from repro.parallel import ParallelEngine

    return ParallelEngine.available()


class Mix:
    """The mixed analysis: a type checker and a symbolic executor, each
    hooked to delegate the other's blocks."""

    def __init__(
        self, config: Optional[MixConfig] = None, names: Optional[NameSupply] = None
    ) -> None:
        self.config = config or MixConfig()
        self.names = names or NameSupply()
        self.checker = TypeChecker(symbolic_block_hook=self._type_symbolic_block)
        self.executor = SymExecutor(
            config=self.config.sym,
            names=self.names,
            typed_block_hook=self._exec_typed_block,
            budget=self.config.budget,
        )
        self.stats = {
            "symbolic_blocks": 0,
            "typed_blocks": 0,
            "paths_explored": 0,
            "exhaustiveness_checks": 0,
            "feasibility_checks": 0,
            "budget_breaches": 0,
        }
        if self.config.jobs > 1 and _engine_available():
            from repro.parallel import ParallelEngine
            from repro.schedule import make_scheduler

            self._parallel: Optional[ParallelEngine] = ParallelEngine(
                self.config.jobs, scheduler=make_scheduler(self.config)
            )
        else:
            self._parallel = None
        #: Degradation notices (GOOD_ENOUGH mode only): budget breaches
        #: that truncated exploration instead of rejecting the program.
        self.warnings: list[str] = []

    @property
    def solver_stats(self) -> "smt.SolverStats":
        """Counters of the shared solver service (queries, cache tiers)."""
        return smt.get_service().stats

    # ------------------------------------------------------------------
    # Rule TSymBlock: type checking {s e s}
    # ------------------------------------------------------------------

    def _type_symbolic_block(self, gamma: TypeEnv, block: SymBlock) -> Type:
        # All solver traffic for the block — feasibility, exhaustiveness,
        # ⊢ m ok — runs under the governor, so every query inherits the
        # run deadline and per-query timeout.  ``governed`` is re-entrant;
        # nested blocks keep the enclosing budget.
        budget = self.config.budget
        if budget is not None:
            budget.start()  # idempotent: the clock arms at first use
        name = str(block.pos) if block.pos is not None else f"block{self.stats['symbolic_blocks'] + 1}"
        with smt.get_service().governed(budget), TRACER.span("mix.block", name):
            try:
                memo_key = self._store_key(gamma, block) if self._store_active() else None
                if memo_key is not None:
                    entry = self.config.store.mix_get(memo_key)
                    if entry is not None:
                        # Cross-run store hit: the block type-checked
                        # cleanly under this exact (text, Γ, config)
                        # before.  Replay its observable effects — name
                        # consumption and stat deltas — and return the
                        # stored result type without re-exploring.
                        return self._replay_block_entry(entry)
                names_mark = self.names.mark()
                stats_before = dict(self.stats)
                warnings_before = len(self.warnings)
                result = self._type_symbolic_block_governed(gamma, block)
                if memo_key is not None and len(self.warnings) == warnings_before:
                    self.config.store.mix_put(
                        memo_key,
                        {
                            "result_type": result,
                            "names": self.names.mark() - names_mark,
                            "stats": {
                                k: self.stats[k] - stats_before[k]
                                for k in self.stats
                            },
                        },
                    )
                return result
            except TypeError_:
                raise  # analysis findings (incl. MixTypeError), not crashes
            except Exception as error:
                if not self.config.contain_crashes:
                    raise
                return self._contain_crash(error, gamma, block)

    # -- cross-run block memos (see repro.store) ------------------------

    def _store_active(self) -> bool:
        """Memoization is on only when a skip is provably transparent:
        serial mode, no budget (a skipped block consumes none of it),
        no witness validation, no fault injection (the fault schedule
        indexes live queries a skip would renumber)."""
        return (
            self.config.store is not None
            and self._parallel is None
            and self.config.budget is None
            and not self.config.validate_witnesses
            and smt.get_service().fault_injector is None
        )

    def _store_key(self, gamma: TypeEnv, block: SymBlock) -> str:
        """The block's cross-run identity: pretty-printed body (the
        normalized form — whitespace/comment edits cannot retire it),
        the typing environment it is checked under, and the analysis
        configuration."""
        import hashlib

        from repro.lang.pretty import pretty

        gamma_fp = tuple(sorted((n, str(t)) for n, t in gamma.items()))
        config_fp = repr(
            (
                self.config.sym,
                self.config.soundness,
                self.config.max_paths_per_block,
                self.config.effect_aware_havoc,
            )
        )
        payload = "\x00".join([pretty(block.body), repr(gamma_fp), config_fp])
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    def _replay_block_entry(self, entry: dict) -> Type:
        """Apply a stored block result: fast-forward the name supply by
        what exploration consumed (later blocks' fresh names must match
        a cold run's) and replay the stat deltas, including any nested
        blocks' counts — a skip covers the whole subtree."""
        self.names.fast_forward(entry["names"])
        for key, delta in entry["stats"].items():
            if key in self.stats:
                self.stats[key] += delta
        return entry["result_type"]

    def _contain_crash(self, error: Exception, gamma: TypeEnv, block: SymBlock) -> Type:
        """Trust ring 3: an unexpected exception during a symbolic block's
        analysis — an executor bug, a solver crash, an injected fault —
        is contained at the block boundary: counted, recorded with a
        delta-debugged repro, and the block degraded to the plain type
        checker, mirroring the BUDGET-breach fallback."""
        from repro.crash import record_crash
        from repro.lang.pretty import pretty
        from repro.shrink import shrink_expr

        smt.get_service().stats.blocks_contained += 1
        shrunk = shrink_expr(block.body, self._crash_probe(gamma, type(error)))
        path = record_crash(
            error,
            phase="mix:symbolic-block",
            source=pretty(block.body),
            shrunk_source=pretty(shrunk),
            crash_dir=self.config.crash_dir,
            injector=smt.get_service().fault_injector,
        )
        where = path or "(report could not be written)"
        self.warnings.append(
            f"symbolic block analysis crashed ({type(error).__name__}: "
            f"{error}); degraded to the type checker — repro at {where}"
        )
        return self.checker.check(block.body, gamma)

    def _crash_probe(self, gamma: TypeEnv, error_type: type):
        """A shrink predicate: does analyzing this candidate body crash
        with the same exception type?  Probes run a fresh Mix on a fresh
        solver service (with a clone of the fault schedule, if any), so
        they can never disturb the shared service or re-enter containment."""
        base_injector = smt.get_service().fault_injector
        paranoid = smt.get_service().paranoid

        def crashes(candidate) -> bool:
            from dataclasses import replace as dc_replace

            from repro.smt.service import SolverService

            service = SolverService(paranoid=paranoid)
            if base_injector is not None:
                service.fault_injector = base_injector.clone()
            saved = smt.get_service()
            smt.set_service(service)
            try:
                config = dc_replace(self.config, contain_crashes=False, budget=None)
                Mix(config=config)._type_symbolic_block(gamma, SymBlock(candidate))
            except TypeError_:
                return False  # an ordinary rejection, not the crash
            except Exception as probe_error:
                return type(probe_error) is error_type
            finally:
                smt.set_service(saved)
            return False

        return crashes

    def _type_symbolic_block_governed(self, gamma: TypeEnv, block: SymBlock) -> Type:
        self.stats["symbolic_blocks"] += 1
        sigma, state = self.make_symbolic_context(gamma)
        outcomes = self._explore(block, sigma, state)
        if self._parallel is not None:
            self._warm_outcome_queries(outcomes)
        result_type: Optional[Type] = None
        surviving: list[Outcome] = []
        assumed_closed: list[Outcome] = []
        breached = False
        for out in outcomes:
            if not out.ok:
                if out.kind is ErrKind.BUDGET:
                    breached = True
                    self._handle_budget_breach(out, block)
                    continue
                if out.kind is ErrKind.ASSUME:
                    # A path closed by assume(e): not an error — its guard
                    # still counts toward exhaustiveness below.
                    assumed_closed.append(out)
                    continue
                self._raise_if_feasible(out, block, gamma, sigma)
                continue  # infeasible failing path: discarded
            surviving.append(out)
        if not surviving:
            if breached:
                # Even good-enough mode cannot shrug this off: with no
                # completed path there is no result type to give the block.
                raise MixTypeError(
                    "the resource budget expired before any path of the "
                    "symbolic block completed; no result type is available",
                    block.pos,
                    kind=ErrKind.BUDGET,
                )
            if assumed_closed:
                # Vacuous: every path dies on an assumption, so there is
                # nothing to check — but also no result type to give the
                # block.  The kind lets `repro prove` classify this as a
                # (vacuous) proof rather than an analysis error.
                raise MixTypeError(
                    "every path of the symbolic block is closed by an "
                    "assumption; the block is vacuous and has no result type",
                    block.pos,
                    kind=ErrKind.ASSUME,
                )
            raise MixTypeError(
                "symbolic block has no feasible execution path", block.pos
            )
        for out in surviving:
            assert out.value is not None
            result_type = self._join_result_type(result_type, out.value, block)
            # Premise ⊢ m(S_i) ok: all paths leave memory consistent.
            if not memory_ok(
                out.state.memory,
                out.state.condition(),
                self.config.sym.semantic_overwrite,
            ):
                raise MixTypeError(
                    "symbolic block leaves memory inconsistently typed "
                    "(⊢ m ok fails on a final state)",
                    block.pos,
                )
        if self.config.soundness is SoundnessMode.SOUND:
            self._check_exhaustive(surviving + assumed_closed, block)
        assert result_type is not None
        return result_type

    def _warm_outcome_queries(self, outcomes: list[Outcome]) -> None:
        """Parallel engine: a block's independent verification queries —
        one feasibility check per failing path, plus the exhaustiveness
        check — fanned out to workers *before* the serial logic below
        runs them.  Workers return only query-cache deltas, so the
        serial verdict logic stays authoritative and unchanged; it just
        finds its queries pre-answered (see repro.parallel)."""
        assert self._parallel is not None
        groups: list[tuple[smt.Term, ...]] = []
        guards: list[smt.Term] = []
        assumptions: list[smt.Term] = []
        assumed: list[Outcome] = []
        for out in outcomes:
            if out.ok:
                # Mirrors _check_exhaustive's formula construction.
                guards.append(out.state.guard)
                for d in out.state.defs:
                    if d not in assumptions:
                        assumptions.append(d)
                continue
            if out.kind is ErrKind.BUDGET:
                continue
            if out.kind is ErrKind.ASSUME:
                # Assume-closed paths join the exhaustiveness formula
                # *after* the surviving paths (the serial logic appends
                # them), never the feasibility groups.
                assumed.append(out)
                continue
            if out.kind is ErrKind.LOOP_BOUND and (
                self.config.soundness is SoundnessMode.GOOD_ENOUGH
            ):
                continue
            groups.append((out.state.condition(),))
        for out in assumed:
            guards.append(out.state.guard)
            for d in out.state.defs:
                if d not in assumptions:
                    assumptions.append(d)
        if self.config.soundness is SoundnessMode.SOUND and guards:
            groups.append((*assumptions, smt.not_(smt.or_(*guards))))
        self._parallel.warm_mix_queries(groups)

    def make_symbolic_context(self, gamma: TypeEnv) -> tuple[SymEnv, State]:
        """Σ(x) = α_x : Γ(x) for all x, and S = ⟨true; μ⟩ with fresh μ."""
        bindings: dict[str, SymValue] = {}
        env_constraints: list[smt.Term] = []
        for name, typ in gamma.items():
            value, constraints = fresh_of_type(typ, self.names)
            bindings[name] = value
            env_constraints.extend(constraints)
        state = State(
            guard=smt.true(),
            memory=fresh_memory(self.names),
            defs=tuple(env_constraints),
        )
        return SymEnv(bindings), state

    def _explore(self, block: SymBlock, sigma: SymEnv, state: State) -> list[Outcome]:
        outcomes: list[Outcome] = []
        for out in self.executor.execute(block.body, sigma, state):
            outcomes.append(out)
            if len(outcomes) > self.config.max_paths_per_block:
                if self.config.soundness is SoundnessMode.SOUND:
                    raise MixTypeError(
                        f"symbolic block exceeded {self.config.max_paths_per_block} "
                        "paths; the analysis cannot finish soundly",
                        block.pos,
                    )
                break  # good-enough mode: truncate exploration
        self.stats["paths_explored"] += len(outcomes)
        return outcomes

    def _handle_budget_breach(self, out: Outcome, block: SymBlock) -> None:
        """An ErrKind.BUDGET outcome stands for the *abandoned* part of the
        frontier, so it is treated conservatively, never as an ordinary
        failing path: no feasibility check could justify dropping it."""
        self.stats["budget_breaches"] += 1
        if self.config.soundness is SoundnessMode.SOUND:
            raise MixTypeError(
                f"resource budget breached: {out.error}; the analysis "
                "cannot finish soundly",
                out.pos or block.pos,
                kind=ErrKind.BUDGET,
            )
        # Good-enough mode: degrade to bounded exploration with a warning.
        self.warnings.append(
            f"resource budget breached: {out.error}; exploration truncated"
        )

    def _raise_if_feasible(
        self,
        out: Outcome,
        block: SymBlock,
        gamma: Optional[TypeEnv] = None,
        sigma: Optional[SymEnv] = None,
    ) -> None:
        if out.kind is ErrKind.LOOP_BOUND and (
            self.config.soundness is SoundnessMode.GOOD_ENOUGH
        ):
            return  # bounded exploration drops unfinished paths
        self.stats["feasibility_checks"] += 1
        try:
            feasible = smt.is_satisfiable(out.state.condition())
        except smt.SolverError:
            feasible = True  # undecided: conservatively report
        if feasible:
            witness = None
            if (
                self.config.validate_witnesses
                and gamma is not None
                and sigma is not None
            ):
                from repro.witness import validate_mix_outcome

                witness = validate_mix_outcome(block.body, gamma, sigma, out)
            raise MixTypeError(
                f"symbolic execution failed: {out.error}",
                out.pos or block.pos,  # type: ignore[arg-type]
                origin="symbolic",
                kind=out.kind,
                witness=witness,
            )

    def _join_result_type(
        self, current: Optional[Type], value: SymValue, block: SymBlock
    ) -> Type:
        if value.term is None:
            raise MixTypeError(
                "a function value escapes the symbolic block; its result "
                "type is latent, so the block cannot be given a type",
                block.pos,
            )
        if current is not None and current != value.typ:
            raise MixTypeError(
                f"paths of the symbolic block disagree on the result type: "
                f"{current} vs {value.typ}",
                block.pos,
            )
        return value.typ

    def _check_exhaustive(self, outcomes: list[Outcome], block: SymBlock) -> None:
        """exhaustive(g(S_1), ..., g(S_n)): the disjunction is a tautology.

        Definitional constraints (division axioms, base-location bounds)
        are total on program inputs, so they are sound assumptions.
        """
        self.stats["exhaustiveness_checks"] += 1
        guards = [out.state.guard for out in outcomes]
        assumptions: list[smt.Term] = []
        for out in outcomes:
            for d in out.state.defs:
                if d not in assumptions:
                    assumptions.append(d)
        try:
            exhaustive = smt.is_valid(smt.or_(*guards), assuming=assumptions)
        except smt.SolverError:
            exhaustive = False
        if not exhaustive:
            raise MixTypeError(
                "the explored paths of the symbolic block are not exhaustive "
                "(the disjunction of path conditions is not a tautology)",
                block.pos,
            )

    # ------------------------------------------------------------------
    # Rule SETypBlock: symbolically executing {t e t}
    # ------------------------------------------------------------------

    def _exec_typed_block(
        self, sigma: SymEnv, state: State, block: TypedBlock
    ) -> Iterator[Outcome]:
        self.stats["typed_blocks"] += 1
        # Premise ⊢ m(S) ok: the type checker relies purely on types, so
        # the memory it starts from must be consistently typed.
        if not memory_ok(
            state.memory, state.condition(), self.config.sym.semantic_overwrite
        ):
            yield Outcome(
                state,
                error=(
                    "entering a typed block with inconsistently typed memory "
                    "(⊢ m ok fails)"
                ),
                kind=ErrKind.TYPE_ERROR,
                pos=block.pos,
            )
            return
        # Premise ⊢ Σ : Γ — abstract the symbolic environment to types.
        gamma = abstract_env(sigma)
        try:
            block_type = self.checker.check(block.body, gamma)
        except MixTypeError as error:
            # Even if the nested failure came from an inner symbolic
            # block, *this* outcome is a static judgment of the typed
            # block: its path condition says nothing about the inner
            # block's fresh inputs, so replay must not treat it as a
            # dynamic claim (origin="typed" blocks REPLAY_DIVERGED).
            yield Outcome(
                state,
                error=str(error),
                kind=error.kind or ErrKind.TYPE_ERROR,
                pos=error.pos or block.pos,
                origin="typed",
            )
            return
        except TypeError_ as error:
            yield Outcome(
                state,
                error=f"type error in typed block: {error.message}",
                kind=ErrKind.TYPE_ERROR,
                pos=error.pos or block.pos,
                origin="typed",
            )
            return
        # Conclusion: a fresh α of the block's type, havocked memory μ'.
        # With the effect refinement the paper sketches in §3.2, a typed
        # block with no write effect keeps the current memory instead.
        result, constraints = fresh_of_type(block_type, self.names)
        if self.config.effect_aware_havoc:
            from repro.lang.effects import may_write

            havoc = may_write(block.body)
        else:
            havoc = True
        memory = fresh_memory(self.names) if havoc else state.memory
        new_state = state.with_memory(memory).add_defs(*constraints)
        yield Outcome(new_state, value=result)


def abstract_env(sigma: SymEnv) -> TypeEnv:
    """⊢ Σ : Γ — the typing environment a symbolic environment conforms to.

    Closures built inside symbolic code have a latent result type (the
    executor types them at application), so they cannot be assigned a Γ
    entry; such variables are omitted, making any use of them inside the
    typed block an "unbound variable" type error — conservative but sound.
    """
    gamma = TypeEnv()
    for name, value in sigma.items():
        typ = value.typ
        if isinstance(typ, FunType) and not isinstance(value.fun, UnknownFun):
            continue
        gamma = gamma.extend(name, typ)
    return gamma
