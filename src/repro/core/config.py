"""Configuration for the MIX analysis."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Optional

from repro.budget import Budget
from repro.symexec.executor import SymConfig


@unique
class SoundnessMode(Enum):
    """How strictly rule TSymBlock treats exhaustiveness.

    The paper: "Symbolic execution has typically been used as an unsound
    analysis where there is no exhaustiveness check ...  We can also model
    such unsound analysis by weakening exhaustive(...) to a 'good enough
    check.'"
    """

    #: Require exhaustive(g1, ..., gn) — the disjunction of all explored
    #: path conditions must be a tautology — and reject paths the executor
    #: could not finish (e.g. loop-bound exhaustion).
    SOUND = "sound"
    #: Bounded, KLEE-style exploration: unfinished paths are dropped and
    #: no tautology check is made.  Unsound but often useful.
    GOOD_ENOUGH = "good-enough"


@dataclass
class MixConfig:
    """All knobs of the mixed analysis (see DESIGN.md §6 for ablations)."""

    sym: SymConfig = field(default_factory=SymConfig)
    soundness: SoundnessMode = SoundnessMode.SOUND
    #: cap on paths explored per symbolic block (safety valve; exceeding it
    #: is an analysis failure in SOUND mode, truncation in GOOD_ENOUGH)
    max_paths_per_block: int = 10_000
    #: the paper's §3.2 refinement: skip SETypBlock's memory havoc when a
    #: simple effect analysis shows the typed block makes no writes
    effect_aware_havoc: bool = False
    #: resource governor for the whole run: wall-clock deadline, per-query
    #: solver timeout, global path cap, memory-log depth cap.  ``None``
    #: means ungoverned.  A breach degrades gracefully: SOUND mode rejects
    #: with an ErrKind.BUDGET diagnostic, GOOD_ENOUGH truncates with a
    #: warning (see docs/ARCHITECTURE.md §1.2).
    budget: Optional[Budget] = None
    #: trust ring 1: replay every reported error path through the
    #: concrete interpreter and classify the diagnostic CONFIRMED /
    #: UNCONFIRMED / REPLAY_DIVERGED (see docs/ARCHITECTURE.md §1.3).
    #: Defaults from the REPRO_VALIDATE_WITNESSES environment variable.
    validate_witnesses: bool = field(default_factory=lambda: _env_flag("REPRO_VALIDATE_WITNESSES"))
    #: trust ring 3: catch unexpected exceptions during a block's
    #: analysis, degrade the block to its typed result, and write a
    #: shrunken crash repro instead of taking the whole run down.
    contain_crashes: bool = True
    #: where contained crashes write their minimized repro reports
    crash_dir: str = ".repro-crashes"
    #: worker processes for the parallel engine (``--jobs``; see
    #: repro.parallel).  1 = the serial path, byte for byte.  Defaults
    #: from the REPRO_JOBS environment variable (CI equivalence runs).
    jobs: int = field(default_factory=lambda: _env_int("REPRO_JOBS", 1))
    #: speculative-dispatch policy under ``--jobs N`` (``--schedule``;
    #: see repro.schedule): "fifo" = PR 4's one-task-per-item fan-out,
    #: "waves" adds similarity-batched waves with convergence skipping,
    #: "portfolio" adds strategy racing for hot blocks.  Never affects
    #: the authoritative pass, so output is identical in every mode.
    schedule: str = field(default_factory=lambda: _env_str("REPRO_SCHEDULE", "fifo"))
    #: path to a ``.repro-sched.json`` hint file from a prior run's
    #: ``trace-report --emit-hints`` (``--sched-hints``); None = unhinted.
    sched_hints: Optional[str] = field(
        default_factory=lambda: os.environ.get("REPRO_SCHED_HINTS") or None
    )
    #: cross-run analysis store (``--store DIR``; see repro.store): an
    #: opened :class:`repro.store.AnalysisStore`, or None.  Symbolic
    #: blocks that type-checked cleanly are memoized keyed on (block
    #: text, Γ, config) and skipped on later runs; active only on the
    #: serial path with no budget / validation / fault injection.
    store: Optional[object] = None


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0")


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


def _env_str(name: str, default: str) -> str:
    return os.environ.get(name) or default
