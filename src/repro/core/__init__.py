"""MIX: the paper's primary contribution.

Two *mix rules* connect the otherwise independent, off-the-shelf type
checker (:mod:`repro.typecheck`) and symbolic executor
(:mod:`repro.symexec`):

- **TSymBlock** (:meth:`repro.core.mix.Mix._type_symbolic_block`) — type
  checking a symbolic block ``{s e s}``: every variable of Γ becomes a
  fresh symbolic α of its type, execution starts from ``⟨true; μ⟩`` with
  a fresh arbitrary memory, *all* paths are explored, the disjunction of
  their path conditions must be a tautology (``exhaustive``), all paths
  must agree on one result type, and every final memory must satisfy
  ``⊢ m ok``.

- **SETypBlock** (:meth:`repro.core.mix.Mix._exec_typed_block`) —
  symbolically executing a typed block ``{t e t}``: the symbolic
  environment is abstracted to a typing environment (``⊢ Σ : Γ``), the
  current memory must satisfy ``⊢ m ok``, the block is type checked, and
  execution resumes with a fresh α of the block's type and a havocked
  (fresh, arbitrary-but-consistent) memory μ'.

Use :class:`repro.core.Mix` (or the convenience functions
:func:`repro.core.analyze` / :func:`repro.core.analyze_source`) to run
the whole mixed analysis.
"""

from repro.core.config import MixConfig, SoundnessMode
from repro.core.mix import Mix, MixTypeError
from repro.core.analysis import Diagnostic, MixReport, analyze, analyze_source
from repro.core.refine import RefinementResult, RefinementStep, auto_place_blocks

__all__ = [
    "Diagnostic",
    "Mix",
    "MixConfig",
    "MixReport",
    "MixTypeError",
    "RefinementResult",
    "RefinementStep",
    "SoundnessMode",
    "analyze",
    "analyze_source",
    "auto_place_blocks",
]
