"""Structured run-trace observability: JSONL spans and counters.

The paper's evaluation (§4.5-4.6) is an *attribution* story — "where did
the 5-25 s with one symbolic block go?" — and answering it needs more
than headline counters: it needs every block entry, fixpoint round,
solver query, witness replay, and worker lifecycle stamped onto one
timeline that a reporting tool can cross-correlate.  This module is that
layer:

- A process-wide :data:`TRACER` writes newline-delimited JSON events to
  a file given by ``--trace FILE``.  Three event shapes exist (see
  `EVENT SCHEMA`_ below): ``span`` (an interval with a monotonic start
  ``t``, a duration ``dur``, and a ``parent`` span id), ``event`` (a
  point occurrence attached to the enclosing span), and ``counter``
  (a named value, e.g. the final solver-service counters).
- :func:`aggregate` folds a trace into a digest — per-block, per-round
  and per-query-tier tables, time-in-solver vs time-in-executor vs
  time-in-merge, and the fraction of run wall-clock attributed to named
  spans — rendered by ``repro trace-report`` and embedded into every
  ``BENCH_<id>.json`` as a ``trace_digest`` section.

**Cost discipline.**  Disabled tracing (the default) must stay off the
profile: every hot call site guards with a single attribute check
(``if TRACER.enabled:``), exactly the :class:`~repro.profiling.
PhaseProfiler` discipline, and :meth:`Tracer.span` is a no-op context
manager that allocates no span object when disabled.  The trace
benchmark (``benchmarks/test_bench_trace.py``) verifies both the
disabled-check cost and the enabled overhead.

**Parallel runs.**  Forked workers inherit the enabled tracer; each
worker rescopes it to a per-worker sidecar file
(``<trace>.worker-<pid>``) and prefixes its span ids with ``w<pid>:`` so
they can never collide with the parent's.  Worker spans keep their
inherited parent pointer (the fan-out span that forked them), so the
timeline stays one tree across processes.  After each pool drains, the
parent appends the sidecar files' lines to the main trace in sorted
filename order and deletes them — deterministic merge order, mirroring
the query-cache delta merge.

.. _EVENT SCHEMA:

Event schema (version 1)
------------------------

Every line is one JSON object with an ``ev`` discriminator:

``{"ev": "meta", "schema": 1, "pid": ..., "t": 0.0}``
    First line of each file (main and sidecar).

``{"ev": "span", "id": "7", "parent": "3", "kind": K, "name": N,
"t": start, "dur": seconds, ...}``
    A completed interval.  ``t`` is seconds since the tracer was
    enabled (monotonic clock, comparable across forked workers).
    ``kind`` is one of :data:`SPAN_KINDS`; extra keys are span fields
    (e.g. ``tier``/``verdict``/``budget`` on ``solver.query``).

``{"ev": "event", "kind": K, "span": "7", "t": ..., ...}``
    A point occurrence inside span ``span``; ``kind`` is one of
    :data:`POINT_KINDS` (e.g. ``path.fork`` with ``pc_size``).

``{"ev": "counter", "name": N, "value": V, "span": ..., "t": ...}``
    A named value (the CLI dumps the final solver stats this way).
"""

from __future__ import annotations

import glob
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Optional, TextIO, Union

SCHEMA_VERSION = 1

#: Interval kinds.  ``run`` is the root; one per analysis entry point.
SPAN_KINDS = frozenset(
    {
        "run",  # one whole analysis run (MIX analyze / Mixy.run)
        "mix.block",  # MIX: type-checking one {s ... s} symbolic block
        "mixy.round",  # MIXY: one fixpoint round
        "mixy.block",  # MIXY: one symbolic block analysis (per function)
        "solver.query",  # one SolverService check_sat/model call
        "witness.replay",  # trust ring 1: one concrete replay
        "parallel.fanout",  # parent: one worker-pool round (incl. waiting)
        "parallel.merge",  # parent: merging worker deltas + trace files
        "worker.task",  # worker: one speculative task
        "request",  # daemon: one client request (analyze/ping/stats)
        "checkpoint",  # daemon: one periodic store checkpoint
    }
)

#: Point-event kinds.
POINT_KINDS = frozenset(
    {
        "path.fork",  # executor forked a branch (pc_size field)
        "path.merge",  # SEIf-Defer merged two branches into one ite
        "path.complete",  # one execution path finished
        "budget.breach",  # resource governor cut something short
        "shed",  # daemon: request refused with a busy reply
        "worker_crash",  # daemon: a request worker died or missed deadline
    }
)

#: Keys reserved by the envelope; span/event fields must avoid them.
RESERVED_KEYS = frozenset({"ev", "id", "parent", "kind", "name", "t", "dur", "span", "value", "schema", "pid"})

#: solver.query tier labels (order = cache tier order).
QUERY_TIERS = (
    "syntactic",
    "exact",
    "subset",
    "superset",
    "model_eval",
    "full_solve",
    "fault",
    "uncached",
)


class TraceSchemaError(ValueError):
    """A trace line failed schema validation."""


class Span:
    """A live (not yet emitted) span.  ``fields`` may be mutated until
    :meth:`Tracer.end_span` runs; they land flattened on the JSON line."""

    __slots__ = ("id", "parent", "kind", "name", "start", "fields")

    def __init__(
        self,
        span_id: str,
        parent: Optional[str],
        kind: str,
        name: str,
        start: float,
        fields: dict,
    ) -> None:
        self.id = span_id
        self.parent = parent
        self.kind = kind
        self.name = name
        self.start = start
        self.fields = fields


class Tracer:
    """The process-wide event tracer (one instance: :data:`TRACER`).

    Disabled by default; :meth:`enable` arms it.  All instrumentation
    call sites check :attr:`enabled` first — a single attribute read —
    so a disabled tracer contributes nothing measurable to a run.

    Emission is guarded by an :class:`threading.RLock` so the threaded
    ``repro serve`` daemon (one handler thread per connection) can trace
    concurrently without interleaving half-written JSONL lines.  Span
    *parenting* uses one process-wide stack — analyses are serialized by
    the daemon, so the occasional concurrent ping/stats span at worst
    picks up a cosmetically-wrong parent, never a corrupt file.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.RLock()
        #: Spans begun since enable() — the zero-overhead test asserts
        #: this stays 0 across a run with the tracer disabled.
        self.spans_started = 0
        #: Lines written since enable() (same purpose).
        self.lines_written = 0
        self._fh: Optional[TextIO] = None
        self._path: Optional[str] = None
        self._prefix = ""
        self._next_id = 0
        self._stack: list[Span] = []
        self._t0 = 0.0

    # -- lifecycle -----------------------------------------------------------

    def enable(
        self, path: Union[str, os.PathLike], mode: str = "truncate"
    ) -> None:
        """Start tracing to ``path``.

        ``mode`` decides what happens to an existing file:

        - ``"truncate"`` (default): start fresh — the right call for a
          one-shot CLI run, where the file is that run's artifact.
        - ``"append"``: keep prior lines and append a new session after
          them.  Each session opens with its own ``meta`` line, and the
          readers treat every line independently, so a file holding
          several sessions still validates and aggregates.
        - ``"rotate"``: move an existing file to ``path.1`` (replacing
          any previous ``path.1``) and start fresh.  This is what a
          restarted daemon wants: the previous life's spans survive at
          a predictable name instead of being silently destroyed.
        """
        with self._lock:
            if self.enabled:
                raise RuntimeError("tracer is already enabled")
            if mode not in ("truncate", "append", "rotate"):
                raise ValueError(f"unknown trace mode {mode!r}")
            self._path = os.fspath(path)
            if mode == "rotate" and os.path.exists(self._path):
                os.replace(self._path, self._path + ".1")
            self._fh = open(
                self._path, "a" if mode == "append" else "w", encoding="utf-8"
            )
            self._prefix = ""
            self._next_id = 0
            self._stack = []
            self.spans_started = 0
            self.lines_written = 0
            self._t0 = time.monotonic()
            self.enabled = True
            self._emit({"ev": "meta", "schema": SCHEMA_VERSION, "pid": os.getpid(), "t": 0.0})

    def close(self) -> None:
        """Stop tracing and close the file (idempotent)."""
        with self._lock:
            if not self.enabled:
                return
            self.enabled = False
            assert self._fh is not None
            self._fh.close()
            self._fh = None
            self._stack = []

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    @property
    def path(self) -> Optional[str]:
        return self._path

    # -- emission ------------------------------------------------------------

    def _now(self) -> float:
        return time.monotonic() - self._t0

    def _emit(self, obj: dict) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(obj, separators=(",", ":"), default=str) + "\n")
        self.lines_written += 1

    def begin_span(self, kind: str, name: str, **fields: Any) -> Span:
        """Open a span; pair with :meth:`end_span`.  Caller must have
        checked :attr:`enabled` (hot paths) — calling this disabled is a
        bug and raises."""
        assert self.enabled, "begin_span on a disabled tracer"
        with self._lock:
            self._next_id += 1
            span = Span(
                f"{self._prefix}{self._next_id}",
                self._stack[-1].id if self._stack else None,
                kind,
                name,
                self._now(),
                fields,
            )
            self._stack.append(span)
            self.spans_started += 1
            return span

    def end_span(self, span: Span, **fields: Any) -> None:
        """Close ``span`` (and any span erroneously left open inside it)
        and write its line."""
        with self._lock:
            if not self.enabled:
                return  # tracer was closed while the span was open
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()  # orphans of a crashed sub-phase
            if self._stack:
                self._stack.pop()
            if fields:
                span.fields.update(fields)
            now = self._now()
            line = {
                "ev": "span",
                "id": span.id,
                "parent": span.parent,
                "kind": span.kind,
                "name": span.name,
                "t": round(span.start, 6),
                "dur": round(now - span.start, 6),
            }
            line.update(span.fields)
            self._emit(line)

    @contextmanager
    def span(self, kind: str, name: str, **fields: Any) -> Iterator[Optional[Span]]:
        """Span as a context manager.  Yields ``None`` (allocating no
        span object) when disabled — suitable for coarse spans (runs,
        rounds, blocks); per-query hot paths use begin/end behind an
        explicit ``enabled`` check instead."""
        if not self.enabled:
            yield None
            return
        span = self.begin_span(kind, name, **fields)
        try:
            yield span
        except BaseException as error:
            span.fields.setdefault("error", type(error).__name__)
            raise
        finally:
            self.end_span(span)

    def event(self, kind: str, **fields: Any) -> None:
        """A point event attached to the current span.  Caller must have
        checked :attr:`enabled`."""
        assert self.enabled, "event on a disabled tracer"
        with self._lock:
            line = {
                "ev": "event",
                "kind": kind,
                "span": self._stack[-1].id if self._stack else None,
                "t": round(self._now(), 6),
            }
            line.update(fields)
            self._emit(line)

    def counter(self, name: str, value: Union[int, float], **fields: Any) -> None:
        """A named counter sample (e.g. final solver stats)."""
        assert self.enabled, "counter on a disabled tracer"
        with self._lock:
            line = {
                "ev": "counter",
                "name": name,
                "value": value,
                "span": self._stack[-1].id if self._stack else None,
                "t": round(self._now(), 6),
            }
            line.update(fields)
            self._emit(line)

    # -- parallel workers (see repro.parallel) --------------------------------

    def rescope_for_worker(self) -> None:
        """In a freshly forked worker: redirect output to a per-worker
        sidecar file and prefix span ids with ``w<pid>:``.  The parent
        flushed before forking, so the inherited buffer holds nothing;
        the inherited stack is kept so worker spans parent to the
        fan-out span that forked them."""
        # Fresh lock first: the fork may have happened while another
        # daemon thread held the inherited one, which would deadlock the
        # single-threaded child forever.
        self._lock = threading.RLock()
        if not self.enabled:
            return
        pid = os.getpid()
        self._prefix = f"w{pid}:"
        self._next_id = 0
        assert self._path is not None
        # The inherited file object shares the parent's fd; never write
        # or close it here (its buffer is empty — the parent flushed).
        self._fh = open(f"{self._path}.worker-{pid}", "a", encoding="utf-8")
        self._emit({"ev": "meta", "schema": SCHEMA_VERSION, "pid": pid, "t": round(self._now(), 6)})

    def merge_worker_files(self, only_pid: Optional[int] = None) -> int:
        """Parent, after a pool drained: append every sidecar file's
        lines to the main trace in sorted filename order, then delete
        them.  Tolerates a torn final line from a killed worker.
        Returns the number of files merged.

        ``only_pid`` restricts the merge to one worker's sidecar — the
        pooled ``repro serve`` daemon merges a worker's spans exactly
        once, at recycle/retire time after the worker is dead; merging
        a *live* pooled worker's sidecar would unlink a file it still
        holds open and silently lose every span it writes afterwards."""
        with self._lock:
            if not self.enabled:
                return 0
            assert self._fh is not None and self._path is not None
            merged = 0
            if only_pid is not None:
                candidates = [f"{self._path}.worker-{only_pid}"]
            else:
                candidates = sorted(
                    glob.glob(glob.escape(self._path) + ".worker-*")
                )
            for wpath in candidates:
                try:
                    with open(wpath, encoding="utf-8") as fh:
                        data = fh.read()
                except OSError:
                    continue
                # Keep only whole lines: a worker killed mid-write leaves
                # a torn tail that would corrupt the JSONL stream.
                complete = data[: data.rfind("\n") + 1]
                if complete:
                    self._fh.write(complete)
                    self.lines_written += complete.count("\n")
                os.unlink(wpath)
                merged += 1
            return merged


#: The process-wide tracer.  Import the module and guard call sites with
#: ``if TRACER.enabled:`` — never ``from repro.trace import TRACER`` into
#: a local that outlives a test's enable/disable cycle... actually the
#: object is a singleton whose ``enabled`` flag flips in place, so both
#: import styles observe enable/disable correctly.
TRACER = Tracer()


def conjunct_count(term: Any) -> int:
    """Cheap path-condition size metric: the number of conjuncts of a
    guard term (AND nodes flattened, anything else counts 1)."""
    from repro.smt.terms import Kind  # local: avoid import cycles at load

    count = 0
    stack = [term]
    while stack:
        t = stack.pop()
        if t.kind is Kind.AND:
            stack.extend(t.args)
        else:
            count += 1
    return count


# ---------------------------------------------------------------------------
# Loading + schema validation
# ---------------------------------------------------------------------------


def validate_line(obj: Any) -> None:
    """Raise :class:`TraceSchemaError` unless ``obj`` is a valid event."""
    if not isinstance(obj, dict):
        raise TraceSchemaError(f"event must be a JSON object, got {type(obj).__name__}")
    ev = obj.get("ev")
    if ev == "meta":
        if obj.get("schema") != SCHEMA_VERSION:
            raise TraceSchemaError(f"unsupported schema version {obj.get('schema')!r}")
        return
    if ev == "span":
        for key, types in (("id", str), ("kind", str), ("name", str), ("t", (int, float)), ("dur", (int, float))):
            if not isinstance(obj.get(key), types):
                raise TraceSchemaError(f"span is missing/mistyped {key!r}: {obj}")
        if obj["kind"] not in SPAN_KINDS:
            raise TraceSchemaError(f"unknown span kind {obj['kind']!r}")
        if not (obj.get("parent") is None or isinstance(obj["parent"], str)):
            raise TraceSchemaError(f"span parent must be a span id or null: {obj}")
        if obj["dur"] < 0 or obj["t"] < 0:
            raise TraceSchemaError(f"span has negative time: {obj}")
        return
    if ev == "event":
        if not isinstance(obj.get("kind"), str) or obj["kind"] not in POINT_KINDS:
            raise TraceSchemaError(f"unknown event kind {obj.get('kind')!r}")
        if not isinstance(obj.get("t"), (int, float)):
            raise TraceSchemaError(f"event is missing 't': {obj}")
        return
    if ev == "counter":
        if not isinstance(obj.get("name"), str):
            raise TraceSchemaError(f"counter is missing 'name': {obj}")
        if not isinstance(obj.get("value"), (int, float)):
            raise TraceSchemaError(f"counter is missing a numeric 'value': {obj}")
        return
    raise TraceSchemaError(f"unknown event discriminator {ev!r}")


def read_trace(path: Union[str, os.PathLike]) -> list[dict]:
    """Load and validate a trace file; raises :class:`TraceSchemaError`
    (with the offending line number) on any malformed line."""
    events: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceSchemaError(f"{path}:{lineno}: not JSON ({error})") from None
            try:
                validate_line(obj)
            except TraceSchemaError as error:
                raise TraceSchemaError(f"{path}:{lineno}: {error}") from None
            events.append(obj)
    return events


# ---------------------------------------------------------------------------
# Aggregation — the single source for trace-report and trace_digest
# ---------------------------------------------------------------------------


def _is_worker_id(span_id: Optional[str]) -> bool:
    return bool(span_id) and span_id.startswith("w")


def aggregate(events: Iterable[dict]) -> dict:
    """Fold trace events into the digest dict behind ``repro
    trace-report`` and the ``trace_digest`` section of BENCH files.

    Spans from worker processes (id prefix ``w``) are speculative work
    overlapping the parent's wall-clock; they are reported in their own
    section and excluded from wall-clock attribution.
    """
    spans: dict[str, dict] = {}
    point_counts: dict[str, int] = {}
    worker_point_counts: dict[str, int] = {}
    counters: dict[str, Union[int, float]] = {}
    n_events = 0
    for obj in events:
        n_events += 1
        ev = obj.get("ev")
        if ev == "span":
            spans[obj["id"]] = obj
        elif ev == "event":
            table = (
                worker_point_counts
                if _is_worker_id(obj.get("span"))
                else point_counts
            )
            table[obj["kind"]] = table.get(obj["kind"], 0) + 1
        elif ev == "counter":
            counters[obj["name"]] = obj["value"]

    def nearest_ancestor(span: dict, kinds: tuple) -> Optional[dict]:
        """The closest enclosing span of one of ``kinds``, following
        parent links (which cross the worker/parent boundary: a worker
        span's chain passes through the parent's fanout span)."""
        seen = set()
        cur: Optional[dict] = span
        while cur is not None:
            parent_id = cur.get("parent")
            if parent_id is None or parent_id in seen:
                return None
            seen.add(parent_id)
            cur = spans.get(parent_id)
            if cur is not None and cur["kind"] in kinds:
                return cur
        return None

    def nearest_block(span: dict) -> Optional[dict]:
        return nearest_ancestor(span, ("mixy.block", "mix.block", "worker.task"))

    parent_spans = [s for s in spans.values() if not _is_worker_id(s["id"])]
    worker_spans = [s for s in spans.values() if _is_worker_id(s["id"])]

    runs = [s for s in parent_spans if s["kind"] == "run"]
    wall = sum(s["dur"] for s in runs)
    run_ids = {s["id"] for s in runs}
    attributed = sum(s["dur"] for s in parent_spans if s.get("parent") in run_ids)

    span_kinds: dict[str, dict] = {}
    for s in parent_spans:
        agg = span_kinds.setdefault(s["kind"], {"count": 0, "seconds": 0.0})
        agg["count"] += 1
        agg["seconds"] += s["dur"]

    # Per-query-tier totals, split authoritative vs speculative.
    def tier_table(query_spans: list[dict]) -> dict[str, dict]:
        table: dict[str, dict] = {}
        for s in query_spans:
            tier = s.get("tier", "uncached")
            agg = table.setdefault(tier, {"count": 0, "seconds": 0.0})
            agg["count"] += 1
            agg["seconds"] += s["dur"]
        return table

    parent_queries = [s for s in parent_spans if s["kind"] == "solver.query"]
    worker_queries = [s for s in worker_spans if s["kind"] == "solver.query"]

    # Per-block table (authoritative only): inclusive seconds, query
    # count, and solver seconds attributed through the parent chain.
    blocks: dict[tuple[str, str], dict] = {}
    for s in parent_spans:
        if s["kind"] not in ("mixy.block", "mix.block"):
            continue
        agg = blocks.setdefault(
            (s["kind"], s["name"]),
            {"kind": s["kind"], "name": s["name"], "count": 0, "seconds": 0.0,
             "queries": 0, "solver_seconds": 0.0, "cache_hits": 0,
             "chash": None, "tiers": {}, "spec_runs": 0, "spec_queries": 0,
             "spec_solver_seconds": 0.0, "spec_first_solver_seconds": 0.0,
             "spec_later_solver_seconds": 0.0},
        )
        agg["count"] += 1
        agg["seconds"] += s["dur"]
        if s.get("cached"):
            agg["cache_hits"] += 1
        if s.get("chash"):
            agg["chash"] = s["chash"]
    for q in parent_queries:
        block = nearest_block(q)
        if block is None:
            continue
        key = (block["kind"], block["name"])
        if key in blocks:
            blocks[key]["queries"] += 1
            blocks[key]["solver_seconds"] += q["dur"]
            tier = q.get("tier", "uncached")
            blocks[key]["tiers"][tier] = blocks[key]["tiers"].get(tier, 0) + 1

    # Speculative (worker-side) per-block attribution.  Worker spans
    # carry real block names inside their worker.task wrappers; bucket
    # their query time by enclosing parallel.fanout so hint emission can
    # split cold (first fanout) from later-round re-speculation.
    fanouts = sorted(
        (s for s in parent_spans if s["kind"] == "parallel.fanout"),
        key=lambda s: s["t"],
    )
    fanout_index = {s["id"]: i for i, s in enumerate(fanouts)}
    for s in worker_spans:
        if s["kind"] not in ("mixy.block", "mix.block"):
            continue
        key = (s["kind"], s["name"])
        if key in blocks:
            blocks[key]["spec_runs"] += 1
            if s.get("chash") and blocks[key]["chash"] is None:
                blocks[key]["chash"] = s["chash"]
    for q in worker_queries:
        block = nearest_ancestor(q, ("mixy.block", "mix.block"))
        if block is None:
            continue
        key = (block["kind"], block["name"])
        if key not in blocks:
            continue
        b = blocks[key]
        b["spec_queries"] += 1
        b["spec_solver_seconds"] += q["dur"]
        tier = q.get("tier", "uncached")
        b["tiers"][tier] = b["tiers"].get(tier, 0) + 1
        fan = nearest_ancestor(q, ("parallel.fanout",))
        if fan is not None and fanout_index.get(fan["id"], 0) > 0:
            b["spec_later_solver_seconds"] += q["dur"]
        else:
            b["spec_first_solver_seconds"] += q["dur"]

    # Per-round table (MIXY).
    rounds = [
        {
            "name": s["name"],
            "seconds": round(s["dur"], 6),
            "frontier": s.get("frontier"),
            "typed": s.get("typed"),
        }
        for s in sorted(
            (s for s in parent_spans if s["kind"] == "mixy.round"),
            key=lambda s: s["t"],
        )
    ]

    solver_seconds = sum(s["dur"] for s in parent_queries)
    witness_seconds = sum(s["dur"] for s in parent_spans if s["kind"] == "witness.replay")
    merge_seconds = sum(s["dur"] for s in parent_spans if s["kind"] == "parallel.merge")
    fanout_seconds = sum(s["dur"] for s in parent_spans if s["kind"] == "parallel.fanout")
    block_seconds = sum(b["seconds"] for b in blocks.values())

    verdicts: dict[str, int] = {}
    for s in parent_spans:
        if s["kind"] == "witness.replay" and "verdict" in s:
            verdicts[s["verdict"]] = verdicts.get(s["verdict"], 0) + 1

    # Scheduler activity, summed over fanout spans (repro.schedule).
    sched_modes = [s["mode"] for s in fanouts if s.get("mode")]
    race_winners: dict[str, str] = {}
    for s in fanouts:
        if isinstance(s.get("winners"), dict):
            race_winners.update(s["winners"])
    scheduler = {
        "mode": next(
            (m for m in sched_modes if m != "fifo"),
            sched_modes[0] if sched_modes else "fifo",
        ),
        "waves": sum(s.get("waves") or 0 for s in fanouts),
        "races": sum(s.get("races") or 0 for s in fanouts),
        "skipped": sum(s.get("skipped") or 0 for s in fanouts),
        "cancelled": sum(s.get("cancelled") or 0 for s in fanouts),
        "race_winners": dict(sorted(race_winners.items())),
    }

    def rounded(table: dict[str, dict]) -> dict[str, dict]:
        return {
            k: {"count": v["count"], "seconds": round(v["seconds"], 6)}
            for k, v in sorted(table.items())
        }

    return {
        "schema": SCHEMA_VERSION,
        "events": n_events,
        "wall_seconds": round(wall, 6),
        "attributed_seconds": round(attributed, 6),
        "attributed_fraction": round(attributed / wall, 4) if wall else 0.0,
        "span_kinds": rounded(span_kinds),
        "time_in": {
            "blocks": round(block_seconds, 6),
            "solver": round(solver_seconds, 6),
            "executor": round(max(0.0, block_seconds - solver_seconds - witness_seconds), 6),
            "witness_replay": round(witness_seconds, 6),
            "parallel_fanout": round(fanout_seconds, 6),
            "parallel_merge": round(merge_seconds, 6),
        },
        "query_tiers": rounded(tier_table(parent_queries)),
        "blocks": sorted(
            (
                {
                    "kind": b["kind"],
                    "name": b["name"],
                    "count": b["count"],
                    "seconds": round(b["seconds"], 6),
                    "queries": b["queries"],
                    "solver_seconds": round(b["solver_seconds"], 6),
                    "cache_hits": b["cache_hits"],
                    "chash": b["chash"],
                    "tiers": dict(sorted(b["tiers"].items())),
                    "spec_runs": b["spec_runs"],
                    "spec_queries": b["spec_queries"],
                    "spec_solver_seconds": round(b["spec_solver_seconds"], 6),
                    "spec_first_solver_seconds": round(
                        b["spec_first_solver_seconds"], 6
                    ),
                    "spec_later_solver_seconds": round(
                        b["spec_later_solver_seconds"], 6
                    ),
                }
                for b in blocks.values()
            ),
            key=lambda b: (-b["seconds"], b["name"]),
        ),
        "rounds": rounds,
        "point_events": dict(sorted(point_counts.items())),
        "speculative": {
            "tasks": sum(1 for s in worker_spans if s["kind"] == "worker.task"),
            "seconds": round(sum(s["dur"] for s in worker_spans if s["kind"] == "worker.task"), 6),
            "query_tiers": rounded(tier_table(worker_queries)),
            "point_events": dict(sorted(worker_point_counts.items())),
        },
        "scheduler": scheduler,
        "witness_verdicts": dict(sorted(verdicts.items())),
        "counters": counters,
    }


def digest_file(path: Union[str, os.PathLike]) -> dict:
    """Validate and aggregate a trace file in one step."""
    return aggregate(read_trace(path))


# ---------------------------------------------------------------------------
# Report rendering (``repro trace-report``)
# ---------------------------------------------------------------------------


def _table(title: str, headers: list[str], rows: list[list]) -> list[str]:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    out = [f"== {title} ==",
           " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
           "-+-".join("-" * w for w in widths)]
    for row in rows:
        out.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return out


def format_report(digest: dict, top: int = 10) -> str:
    """Render a digest as the human-readable trace-report tables."""
    lines: list[str] = []
    wall = digest["wall_seconds"]
    lines.append(
        f"trace: {digest['events']} events, wall {wall:.3f}s, "
        f"{digest['attributed_fraction']:.1%} attributed to named spans"
    )
    ti = digest["time_in"]
    lines.append(
        f"time in: blocks {ti['blocks']:.3f}s (solver {ti['solver']:.3f}s, "
        f"executor {ti['executor']:.3f}s, witness {ti['witness_replay']:.3f}s), "
        f"parallel fan-out {ti['parallel_fanout']:.3f}s, merge {ti['parallel_merge']:.3f}s"
    )
    lines.append("")
    lines.extend(
        _table(
            f"top {top} hottest blocks",
            ["block", "kind", "runs", "seconds", "queries", "solver s", "cache hits"],
            [
                [b["name"], b["kind"], b["count"], f"{b['seconds']:.4f}",
                 b["queries"], f"{b['solver_seconds']:.4f}", b["cache_hits"]]
                for b in digest["blocks"][:top]
            ],
        )
    )
    if digest["rounds"]:
        lines.append("")
        lines.extend(
            _table(
                "fixpoint rounds",
                ["round", "seconds", "frontier", "typed fns"],
                [
                    [r["name"], f"{r['seconds']:.4f}", r.get("frontier", "-"), r.get("typed", "-")]
                    for r in digest["rounds"]
                ],
            )
        )
    lines.append("")
    lines.extend(
        _table(
            "solver queries by cache tier (authoritative pass)",
            ["tier", "count", "seconds"],
            [
                [tier, agg["count"], f"{agg['seconds']:.4f}"]
                for tier, agg in digest["query_tiers"].items()
            ],
        )
    )
    spec = digest["speculative"]
    if spec["tasks"]:
        lines.append("")
        lines.extend(
            _table(
                f"speculative workers ({spec['tasks']} tasks, {spec['seconds']:.3f}s)",
                ["tier", "count", "seconds"],
                [
                    [tier, agg["count"], f"{agg['seconds']:.4f}"]
                    for tier, agg in spec["query_tiers"].items()
                ],
            )
        )
    sched = digest.get("scheduler") or {}
    if sched.get("mode", "fifo") != "fifo":
        lines.append("")
        lines.append(
            f"scheduler: mode {sched['mode']}, {sched['waves']} wave(s) "
            f"dispatched, {sched['races']} race(s) "
            f"({sched['cancelled']} loser(s) cancelled), "
            f"{sched['skipped']} converged block speculation(s) skipped"
        )
        if sched.get("race_winners"):
            winners = ", ".join(
                f"{name}={strat}" for name, strat in sched["race_winners"].items()
            )
            lines.append(f"race winners: {winners}")
    if digest["point_events"]:
        lines.append("")
        lines.extend(
            _table(
                "point events",
                ["kind", "count"],
                [[k, v] for k, v in digest["point_events"].items()],
            )
        )
    if digest["witness_verdicts"]:
        lines.append("")
        lines.extend(
            _table(
                "witness replays",
                ["verdict", "count"],
                [[k, v] for k, v in digest["witness_verdicts"].items()],
            )
        )
    return "\n".join(lines)
