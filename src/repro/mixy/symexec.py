"""A symbolic executor for mini-C — MIXY's substitute for Otter.

Like Otter/KLEE, the executor tracks values at the machine level: every
value is an SMT integer term; pointers are integer addresses with ``0``
for NULL; memory is a map from concrete cell addresses to terms, with
struct fields laid out at ``base + field_index``.  Execution forks at
branches (feasibility-checked with the solver), inlines calls to
functions whose bodies are available, and *reports an error whenever 0
may be dereferenced* on a feasible path — the null-pointer check of
paper Section 4.

Pointers of unknown provenance are **lazily materialized** (§4.2): the
first time an unconstrained symbolic pointer is dereferenced, a fresh
object of the pointee type is created and the pointer is constrained to
it, "so that we can sidestep the issue of initializing an arbitrarily
recursive data structure; MIXY only initializes as much as is required
by the symbolic block".

Calls to ``MIX(typed)`` functions and to externs are delegated to the
driver through ``call_hook`` (rule SETypBlock's role in MIXY).  Calls
through *symbolic* function pointers are unsupported — exactly the
limitation behind the paper's Case 4.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field, replace
from enum import Enum, unique
from typing import Callable, Iterator, Optional

from repro import smt
from repro.budget import Budget
from repro.mixy.c.ast import (
    AddrOf,
    Assign,
    Assume,
    Binary,
    Block,
    Call,
    Cast,
    Check,
    CExpr,
    CFunction,
    CProgram,
    CStmt,
    CType,
    Deref,
    ExprStmt,
    Field,
    FunType,
    If,
    IntLit,
    Malloc,
    NullLit,
    PtrType,
    Return,
    Scalar,
    StrLit,
    StructType,
    Symbolic,
    Unary,
    VarDecl,
    VarRef,
    VOID_T,
    While,
)
from repro.mixy.c.typeinfo import CTypeError, TypeInfo
from repro.smt.simplify import simplify
from repro.trace import TRACER, conjunct_count


@unique
class CErrKind(Enum):
    NULL_DEREF = "possible NULL dereference"
    UNSUPPORTED = "unsupported operation"
    LOOP_BOUND = "loop unroll budget exceeded"
    RECURSION = "recursion depth exceeded"
    #: the resource governor cut exploration short (deadline or path cap);
    #: the driver falls back to pure qualifier inference for the function
    BUDGET = "resource budget exceeded"
    #: trust ring 3: the block's analysis raised an unexpected exception
    #: and was contained — degraded to pure qualifier inference, with a
    #: shrunken crash repro written to the crash directory
    CRASH = "analysis crash contained"
    #: a ``check(e)`` property obligation whose failing branch is
    #: feasible — the property-proving analog of NULL_DEREF
    CHECK_FAIL = "checked property may fail"


@dataclass(frozen=True)
class CWarning:
    kind: CErrKind
    message: str
    function: str

    def __str__(self) -> str:
        return f"{self.kind.value} in {self.function}: {self.message}"

    @property
    def key(self) -> tuple:
        return (self.kind, self.message, self.function)


@dataclass(frozen=True)
class CObj:
    """An allocated object: a run of ``size`` cells starting at ``base``."""

    base: int
    size: int
    ctype: CType
    label: str


@dataclass(frozen=True)
class CState:
    """One path's state: path condition, definitions, memory, objects."""

    guard: smt.Term
    defs: tuple[smt.Term, ...]
    cells: dict[int, smt.Term]
    objects: dict[int, CObj]
    #: names of the α variables ``symbolic()`` minted along this path,
    #: in program order — witness replay concretizes them from the model
    symbolics: tuple[str, ...] = ()

    def condition(self) -> smt.Term:
        return smt.and_(self.guard, *self.defs)

    def add_symbolic(self, name: str) -> "CState":
        return replace(self, symbolics=self.symbolics + (name,))

    def and_guard(self, conjunct: smt.Term) -> "CState":
        return replace(self, guard=simplify(smt.and_(self.guard, conjunct)))

    def add_defs(self, *terms: smt.Term) -> "CState":
        return replace(self, defs=self.defs + terms)

    def write(self, address: int, value: smt.Term) -> "CState":
        cells = dict(self.cells)
        cells[address] = value
        return replace(self, cells=cells)

    def with_object(self, obj: CObj, init: smt.Term) -> "CState":
        cells = dict(self.cells)
        for i in range(obj.size):
            cells[obj.base + i] = init
        objects = dict(self.objects)
        objects[obj.base] = obj
        return replace(self, cells=cells, objects=objects)


# Control flow of statement execution.
_NORMAL = "normal"
_RETURN = "return"


@dataclass(frozen=True)
class StmtOutcome:
    state: CState
    flow: str = _NORMAL
    ret: Optional[smt.Term] = None


@dataclass(frozen=True)
class PathResult:
    """One completed execution path of a function."""

    state: CState
    ret: Optional[smt.Term]


@dataclass
class CSymConfig:
    max_loop_unroll: int = 32
    max_call_depth: int = 16
    max_lazy_objects_per_path: int = 16


# Driver hook for MIX(typed)/extern calls:
# (function name, arg terms, state) -> iterator of (state, return term or None)
CallHook = Callable[[str, list[smt.Term], CState], Iterator[tuple[CState, Optional[smt.Term]]]]


class CSymExecutor:
    """Executes mini-C functions symbolically, collecting warnings."""

    def __init__(
        self,
        program: CProgram,
        config: Optional[CSymConfig] = None,
        call_hook: Optional[CallHook] = None,
        budget: Optional[Budget] = None,
    ) -> None:
        self.program = program
        self.config = config or CSymConfig()
        self.call_hook = call_hook
        self.budget = budget
        self.warnings: list[CWarning] = []
        self._warned: set[tuple] = set()
        #: trust ring 1 (MIXY half): the driver installs a callback that
        #: replays a fresh NULL_DEREF warning through the concrete mini-C
        #: interpreter; its verdict lands in ``witnesses`` keyed by the
        #: warning's :attr:`CWarning.key`.
        self.witness_checker: Optional[
            Callable[[CState, smt.Term, CWarning], Optional[object]]
        ] = None
        self.witnesses: dict[tuple, object] = {}
        #: next fresh-symbol ordinal; a plain int (not itertools.count)
        #: so the cross-run block store can snapshot and fast-forward it
        self._alpha = 1
        #: per-hint fresh-symbol counters; installed (non-None) only by
        #: reset_block_counters, i.e. only ever in parallel mode
        self._hint_alpha: Optional[defaultdict] = None
        self._next_address = 1
        self.fn_addresses: dict[str, int] = {}
        self.stats = {
            "forks": 0,
            "solver_calls": 0,
            "lazy_objects": 0,
            "paths": 0,
            "budget_breaches": 0,
        }
        #: name -> cell address of each global; installed by the driver
        #: (globals live at fixed addresses shared across paths).
        self.global_env: dict[str, int] = {}
        for name in program.functions:
            self.fn_addresses[name] = self._alloc_address(1)
        self._fn_by_address = {v: k for k, v in self.fn_addresses.items()}
        #: first address past the (stable) function addresses; the
        #: block-deterministic naming reset rewinds allocation to here
        self._address_base = self._next_address

    # -- allocation ----------------------------------------------------------------

    def _alloc_address(self, size: int) -> int:
        base = self._next_address
        self._next_address += max(size, 1)
        return base

    def reset_block_counters(self) -> None:
        """Switch to block-deterministic naming and rewind allocation to
        its post-init point (function addresses stay put).  The parallel
        engine calls this at each *top-level* block entry so a block's
        terms depend only on (program, calling context), making them
        identical between a speculative worker run, the parent's
        authoritative run, and re-runs in later fixpoint rounds — which
        is what lets the query cache match across processes and rounds.

        Naming becomes *per hint* rather than one global sequence: a
        context change that adds one fresh symbol (say a global turning
        may-null adds its ``_isnull`` choice) must not shift the names of
        every later symbol, or no formula from the previous round would
        ever match again.  Distinct hints yield distinct names and the
        per-hint sequence keeps repeats of one hint apart, so uniqueness
        within a path condition is preserved.  Blocks use disjoint fresh
        states, so reused names/addresses can never collide within one
        path.  Serial mode (``--jobs 1``) never calls this."""
        self._hint_alpha = defaultdict(lambda: itertools.count(1))
        self._next_address = self._address_base

    def counter_marks(self) -> tuple[int, int]:
        """(fresh-symbol ordinal, next address) — a peek, consuming
        nothing.  The cross-run block store diffs two marks to learn how
        many symbols/addresses a block's execution consumed, so a store
        hit can :meth:`fast_forward` past them and leave every later
        block's names exactly where a cold run would have put them."""
        return self._alpha, self._next_address

    def fast_forward(self, symbols: int, addresses: int) -> None:
        """Advance the serial naming counters as if ``symbols`` fresh
        symbols and ``addresses`` cells had been allocated (store hits
        replaying a skipped execution; serial naming only — the
        block-deterministic mode has nothing to fast-forward)."""
        assert self._hint_alpha is None, "fast_forward is serial-only"
        self._alpha += symbols
        self._next_address += addresses

    def fresh_symbol(self, hint: str = "c") -> smt.Term:
        if self._hint_alpha is not None:
            return smt.var(f"{hint}!{next(self._hint_alpha[hint])}", smt.INT)
        name = f"{hint}!{self._alpha}"
        self._alpha += 1
        return smt.var(name, smt.INT)

    def object_size(self, ctype: CType) -> int:
        if isinstance(ctype, StructType):
            return max(len(self.program.struct_def(ctype).fields), 1)
        return 1

    def allocate_object(
        self, state: CState, ctype: CType, label: str, init: Optional[smt.Term] = None
    ) -> tuple[CState, CObj]:
        size = self.object_size(ctype)
        obj = CObj(self._alloc_address(size), size, ctype, label)
        return state.with_object(obj, init if init is not None else smt.int_const(0)), obj

    def initial_state(self) -> CState:
        return CState(smt.true(), (), {}, {})

    # -- warnings / feasibility ----------------------------------------------------

    def warn(self, kind: CErrKind, message: str, function: str) -> Optional[CWarning]:
        """Record a warning; returns it when fresh, ``None`` on a dup."""
        warning = CWarning(kind, message, function)
        if warning.key in self._warned:
            return None
        self._warned.add(warning.key)
        self.warnings.append(warning)
        return warning

    def _relay_witness(
        self, warning: Optional[CWarning], state: CState, ptr: smt.Term
    ) -> None:
        """Ask the driver's witness checker to replay a fresh warning."""
        if warning is None or self.witness_checker is None:
            return
        witness = self.witness_checker(state, ptr, warning)
        if witness is not None:
            self.witnesses[warning.key] = witness

    @property
    def solver_stats(self) -> "smt.SolverStats":
        """Counters of the shared solver service (queries, cache tiers)."""
        return smt.get_service().stats

    def _deadline_hit(self) -> bool:
        return self.budget is not None and self.budget.expired()

    def _budget_breach(self, counter: str, message: str, function: str) -> None:
        """Record a governor breach: a CWarning (so ``Mixy.warnings`` shows
        it), an executor stat, and the shared service's breach counter."""
        self.stats["budget_breaches"] += 1
        stats = smt.get_service().stats
        setattr(stats, counter, getattr(stats, counter) + 1)
        if TRACER.enabled:
            TRACER.event("budget.breach", counter=counter, function=function)
        self.warn(CErrKind.BUDGET, message, function)

    def feasible(self, state: CState, extra: Optional[smt.Term] = None) -> bool:
        self.stats["solver_calls"] += 1
        formula = state.condition() if extra is None else smt.and_(state.condition(), extra)
        try:
            return smt.is_satisfiable(formula)
        except smt.SolverError:
            return True

    # -- function execution -----------------------------------------------------------

    def execute_function(
        self,
        fn: CFunction,
        args: list[smt.Term],
        state: CState,
        depth: int = 0,
    ) -> Iterator[PathResult]:
        """All paths through ``fn`` with the given argument values."""
        assert fn.body is not None, f"{fn.name} has no body"
        if depth > self.config.max_call_depth:
            self.warn(
                CErrKind.RECURSION,
                f"call depth exceeded at {fn.name}",
                fn.name,
            )
            yield PathResult(state, self._havoc_return(fn.ret))
            return
        env: dict[str, int] = {}
        local_types = {p.name: p.typ for p in fn.params}
        _collect_locals(fn.body, local_types)
        # Parameters and locals are addressable cells (C takes &local).
        for param, value in zip(fn.params, args):
            state, obj = self.allocate_object(state, param.typ, f"{fn.name}.{param.name}")
            state = state.write(obj.base, value)
            env[param.name] = obj.base
        for name, typ in local_types.items():
            if name in env:
                continue
            state, obj = self.allocate_object(state, typ, f"{fn.name}.{name}")
            env[name] = obj.base
        frame = _Frame(fn, env, TypeInfo(self.program, local_types), depth, lazy_budget=self.config.max_lazy_objects_per_path)
        for out in self._exec_stmt(fn.body, frame, state):
            # Paths are charged against the run budget only at the top of
            # the call stack: a path through a callee is part of exactly
            # one caller path, so charging at depth > 0 would double-count.
            if (
                depth == 0
                and self.budget is not None
                and not self.budget.charge_path()
            ):
                self._budget_breach(
                    "path_budget_breaches",
                    f"path budget exhausted ({self.budget.max_paths} paths) "
                    f"in {fn.name}: remaining frontier abandoned",
                    fn.name,
                )
                return
            self.stats["paths"] += 1
            if depth == 0 and TRACER.enabled:
                TRACER.event("path.complete", function=fn.name)
            yield PathResult(out.state, out.ret)

    def _havoc_return(self, ret_type: CType) -> Optional[smt.Term]:
        if ret_type == VOID_T:
            return None
        return self.fresh_symbol("ret")

    # -- statements ---------------------------------------------------------------

    def _exec_stmt(self, stmt: CStmt, frame: "_Frame", state: CState) -> Iterator[StmtOutcome]:
        if isinstance(stmt, Block):
            yield from self._exec_block(stmt.stmts, 0, frame, state)
        elif isinstance(stmt, VarDecl):
            if stmt.init is None:
                yield StmtOutcome(state)
                return
            for s1, value in self._eval(stmt.init, frame, state):
                yield StmtOutcome(s1.write(frame.env[stmt.name], value))
        elif isinstance(stmt, ExprStmt):
            for s1, _value in self._eval(stmt.expr, frame, state):
                yield StmtOutcome(s1)
        elif isinstance(stmt, If):
            yield from self._exec_if(stmt, frame, state)
        elif isinstance(stmt, While):
            yield from self._exec_while(stmt, frame, state, self.config.max_loop_unroll)
        elif isinstance(stmt, Return):
            if stmt.value is None:
                yield StmtOutcome(state, _RETURN, None)
                return
            for s1, value in self._eval(stmt.value, frame, state):
                yield StmtOutcome(s1, _RETURN, value)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement {stmt!r}")

    def _exec_block(
        self, stmts: tuple[CStmt, ...], index: int, frame: "_Frame", state: CState
    ) -> Iterator[StmtOutcome]:
        if index >= len(stmts):
            yield StmtOutcome(state)
            return
        for out in self._exec_stmt(stmts[index], frame, state):
            if out.flow is _RETURN:
                yield out
            else:
                yield from self._exec_block(stmts, index + 1, frame, out.state)

    def _exec_if(self, stmt: If, frame: "_Frame", state: CState) -> Iterator[StmtOutcome]:
        if self._deadline_hit():
            self._budget_breach(
                "deadline_breaches",
                f"run deadline reached at a branch in {frame.fn.name}: "
                "paths abandoned",
                frame.fn.name,
            )
            return
        for s1, cond in self._eval(stmt.cond, frame, state):
            guard = simplify(smt.not_(smt.eq(cond, smt.int_const(0))))
            branches = []
            if not guard.is_false:
                branches.append((stmt.then, guard))
            else_block = stmt.els if stmt.els is not None else Block(())
            if not guard.is_true:
                branches.append((else_block, simplify(smt.not_(guard))))
            if len(branches) > 1:
                self.stats["forks"] += 1
                if TRACER.enabled:
                    TRACER.event(
                        "path.fork", pc_size=conjunct_count(s1.condition())
                    )
            for block, extension in branches:
                branch_state = s1.and_guard(extension)
                if len(branches) > 1 and not self.feasible(branch_state):
                    continue
                yield from self._exec_stmt(block, frame, branch_state)

    def _exec_while(
        self, stmt: While, frame: "_Frame", state: CState, remaining: int
    ) -> Iterator[StmtOutcome]:
        if self._deadline_hit():
            self._budget_breach(
                "deadline_breaches",
                f"run deadline reached inside a loop in {frame.fn.name}: "
                "remaining iterations abandoned",
                frame.fn.name,
            )
            return
        for s1, cond in self._eval(stmt.cond, frame, state):
            guard = simplify(smt.not_(smt.eq(cond, smt.int_const(0))))
            # Exit path.
            if not guard.is_true:
                exit_state = s1.and_guard(smt.not_(guard))
                if guard.is_false or self.feasible(exit_state):
                    yield StmtOutcome(exit_state)
            # Iterate path.
            if not guard.is_false:
                enter = s1 if guard.is_true else s1.and_guard(guard)
                if not guard.is_true and not self.feasible(enter):
                    continue
                if remaining <= 0:
                    self.warn(
                        CErrKind.LOOP_BOUND,
                        f"while loop in {frame.fn.name} exceeded unroll budget",
                        frame.fn.name,
                    )
                    continue
                for out in self._exec_stmt(stmt.body, frame, enter):
                    if out.flow is _RETURN:
                        yield out
                    else:
                        yield from self._exec_while(stmt, frame, out.state, remaining - 1)

    # -- expressions -----------------------------------------------------------------

    def _eval(
        self, expr: CExpr, frame: "_Frame", state: CState
    ) -> Iterator[tuple[CState, smt.Term]]:
        if isinstance(expr, IntLit):
            yield state, smt.int_const(expr.value)
        elif isinstance(expr, NullLit):
            yield state, smt.int_const(0)
        elif isinstance(expr, StrLit):
            new_state, obj = self.allocate_object(
                state, Scalar("char"), f'"{expr.value[:12]}"'
            )
            yield new_state, smt.int_const(obj.base)
        elif isinstance(expr, VarRef):
            yield from self._eval_var(expr, frame, state)
        elif isinstance(expr, Deref):
            for s1, ptr in self._eval(expr.ptr, frame, state):
                pointee = self._pointee_type(expr.ptr, frame)
                yield from self._load(s1, ptr, pointee, 0, frame, f"*{_describe(expr.ptr)}")
        elif isinstance(expr, AddrOf):
            yield from self._eval_addrof(expr, frame, state)
        elif isinstance(expr, Field):
            yield from self._eval_field(expr, frame, state)
        elif isinstance(expr, Unary):
            for s1, operand in self._eval(expr.operand, frame, state):
                if expr.op == "-":
                    yield s1, simplify(smt.neg(operand))
                else:  # "!"
                    yield s1, simplify(
                        smt.ite(
                            smt.eq(operand, smt.int_const(0)),
                            smt.int_const(1),
                            smt.int_const(0),
                        )
                    )
        elif isinstance(expr, Binary):
            yield from self._eval_binary(expr, frame, state)
        elif isinstance(expr, Assign):
            yield from self._eval_assign(expr, frame, state)
        elif isinstance(expr, Call):
            yield from self._eval_call(expr, frame, state)
        elif isinstance(expr, Malloc):
            new_state, obj = self.allocate_object(state, expr.typ, f"malloc({expr.typ})")
            yield new_state, smt.int_const(obj.base)
        elif isinstance(expr, Cast):
            yield from self._eval(expr.operand, frame, state)
        elif isinstance(expr, Symbolic):
            alpha = self.fresh_symbol("symbolic")
            yield state.add_symbolic(str(alpha.payload)), alpha
        elif isinstance(expr, Assume):
            yield from self._eval_assume(expr, frame, state)
        elif isinstance(expr, Check):
            yield from self._eval_check(expr, frame, state)
        else:  # pragma: no cover - defensive
            raise CTypeError(f"cannot evaluate {expr!r}")

    def _eval_assume(
        self, expr: Assume, frame: "_Frame", state: CState
    ) -> Iterator[tuple[CState, smt.Term]]:
        """``assume(e)``: drop paths where ``e`` is false.  MIXY has no
        exhaustiveness obligation (it is a KLEE-style warning analysis),
        so the closed arm is simply not explored."""
        for s1, cond in self._eval(expr.cond, frame, state):
            guard = simplify(smt.not_(smt.eq(cond, smt.int_const(0))))
            if guard.is_false:
                continue
            s2 = s1 if guard.is_true else s1.and_guard(guard)
            if not guard.is_true and not self.feasible(s2):
                continue
            yield s2, smt.int_const(1)

    def _eval_check(
        self, expr: Check, frame: "_Frame", state: CState
    ) -> Iterator[tuple[CState, smt.Term]]:
        """``check(e)``: warn if the failing branch is feasible, then
        continue on the passing branch (the failure has been reported;
        re-deriving its consequences downstream adds no information)."""
        if self._deadline_hit():
            self._budget_breach(
                "deadline_breaches",
                f"run deadline reached at a check in {frame.fn.name}: "
                "paths abandoned",
                frame.fn.name,
            )
            return
        for s1, cond in self._eval(expr.cond, frame, state):
            guard = simplify(smt.not_(smt.eq(cond, smt.int_const(0))))
            fail_guard = simplify(smt.not_(guard))
            if not fail_guard.is_false:
                fail_state = s1.and_guard(fail_guard)
                if fail_guard.is_true or self.feasible(fail_state):
                    self.stats["forks"] += 1
                    if TRACER.enabled:
                        TRACER.event(
                            "path.fork", pc_size=conjunct_count(s1.condition())
                        )
                    from repro.mixy.c.pretty import expr_text

                    warning = self.warn(
                        CErrKind.CHECK_FAIL,
                        f"check({expr_text(expr.cond)}) can fail in {frame.fn.name}",
                        frame.fn.name,
                    )
                    self._relay_witness(warning, fail_state, cond)
            if guard.is_false:
                continue
            s2 = s1 if guard.is_true else s1.and_guard(guard)
            if not guard.is_true and not self.feasible(s2):
                continue
            yield s2, smt.int_const(1)

    def _eval_var(self, expr: VarRef, frame: "_Frame", state: CState) -> Iterator[tuple[CState, smt.Term]]:
        name = expr.name
        if name in frame.env:
            yield state, self._read_cell(state, frame.env[name])
        elif name in self.global_env:
            yield state, self._read_cell(state, self.global_env[name])
        elif name in self.fn_addresses:
            yield state, smt.int_const(self.fn_addresses[name])
        else:
            raise CTypeError(f"unknown identifier {name}")

    def _read_cell(self, state: CState, address: int) -> smt.Term:
        return state.cells.get(address, smt.int_const(0))

    def _eval_addrof(self, expr: AddrOf, frame: "_Frame", state: CState):
        target = expr.target
        if isinstance(target, VarRef):
            if target.name in frame.env:
                yield state, smt.int_const(frame.env[target.name])
                return
            if target.name in self.global_env:
                yield state, smt.int_const(self.global_env[target.name])
                return
            if target.name in self.fn_addresses:
                yield state, smt.int_const(self.fn_addresses[target.name])
                return
            raise CTypeError(f"&{target.name}: unknown identifier")
        if isinstance(target, Deref):  # &*e == e
            yield from self._eval(target.ptr, frame, state)
            return
        if isinstance(target, Field):
            yield from self._field_address(target, frame, state)
            return
        raise CTypeError(f"cannot take the address of {target!r}")

    def _field_address(self, expr: Field, frame: "_Frame", state: CState):
        """Address of a field lvalue, forking over pointer resolutions."""
        if expr.arrow:
            struct_type = self._pointee_type(expr.obj, frame)
            for s1, ptr in self._eval(expr.obj, frame, state):
                for s2, base in self._resolve_pointer(
                    s1, ptr, struct_type, frame, f"{_describe(expr.obj)}->{expr.name}"
                ):
                    offset = self._field_offset(struct_type, expr.name)
                    yield s2, smt.int_const(base + offset)
        else:
            # e.f where e is a local/global struct variable.
            obj = expr.obj
            if isinstance(obj, VarRef):
                base = frame.env.get(obj.name, self.global_env.get(obj.name))
                if base is None:
                    raise CTypeError(f"unknown identifier {obj.name}")
                struct_type = frame.types.type_of(obj)
                yield state, smt.int_const(base + self._field_offset(struct_type, expr.name))
            else:
                raise CTypeError(f"unsupported field base {obj!r}")

    def _field_offset(self, struct_type: CType, fname: str) -> int:
        struct = self.program.struct_def(struct_type)
        return struct.field_index(fname)

    def _eval_field(self, expr: Field, frame: "_Frame", state: CState):
        field_type = frame.types.type_of(expr)
        for s1, address in self._field_address(expr, frame, state):
            assert address.is_const
            yield s1, self._read_cell(s1, address.payload)  # type: ignore[arg-type]

    def _eval_binary(self, expr: Binary, frame: "_Frame", state: CState):
        op = expr.op
        if op in ("&&", "||"):
            # C short-circuits: the right operand's *effects* must only
            # happen on the paths where it is evaluated, so fork.
            yield from self._eval_short_circuit(expr, frame, state)
            return
        for s1, left in self._eval(expr.left, frame, state):
            for s2, right in self._eval(expr.right, frame, s1):
                if op == "/":
                    yield from self._eval_division(expr, frame, s2, left, right)
                else:
                    yield s2, self._binary_term(op, left, right)

    def _eval_division(
        self, expr: Binary, frame: "_Frame", state: CState, left: smt.Term, right: smt.Term
    ):
        from repro.smt.encodings import encode_trunc_div, trunc_div_constant

        left = simplify(left)
        right = simplify(right)
        if not right.is_const:
            self.warn(
                CErrKind.UNSUPPORTED,
                f"division by a symbolic value in {frame.fn.name}",
                frame.fn.name,
            )
            return
        divisor = right.payload
        assert isinstance(divisor, int)
        if divisor == 0:
            # Undefined behavior in C; the path dies with a warning.
            self.warn(
                CErrKind.UNSUPPORTED,
                f"division by zero in {frame.fn.name}",
                frame.fn.name,
            )
            return
        if left.is_const:
            assert isinstance(left.payload, int)
            yield state, smt.int_const(trunc_div_constant(left.payload, divisor))
            return
        quotient = self.fresh_symbol("q")
        yield state.add_defs(encode_trunc_div(left, divisor, quotient)), quotient

    def _eval_short_circuit(self, expr: Binary, frame: "_Frame", state: CState):
        decided = smt.int_const(0) if expr.op == "&&" else smt.int_const(1)
        for s1, left in self._eval(expr.left, frame, state):
            left_true = simplify(smt.not_(smt.eq(left, smt.int_const(0))))
            # Short-circuit side: && with false left / || with true left.
            skip_guard = smt.not_(left_true) if expr.op == "&&" else left_true
            eval_guard = left_true if expr.op == "&&" else smt.not_(left_true)
            if not simplify(skip_guard).is_false:
                skip_state = s1.and_guard(skip_guard)
                if simplify(skip_guard).is_true or self.feasible(skip_state):
                    yield skip_state, decided
            if not simplify(eval_guard).is_false:
                eval_state = s1.and_guard(eval_guard)
                if not simplify(eval_guard).is_true and not self.feasible(eval_state):
                    continue
                for s2, right in self._eval(expr.right, frame, eval_state):
                    yield s2, simplify(
                        smt.ite(
                            smt.eq(right, smt.int_const(0)),
                            smt.int_const(0),
                            smt.int_const(1),
                        )
                    )

    def _binary_term(self, op: str, left: smt.Term, right: smt.Term) -> smt.Term:
        def boolint(term: smt.Term) -> smt.Term:
            return simplify(smt.ite(term, smt.int_const(1), smt.int_const(0)))

        if op == "+":
            return simplify(smt.add(left, right))
        if op == "-":
            return simplify(smt.sub(left, right))
        if op == "*":
            return simplify(smt.mul(left, right))
        if op == "==":
            return boolint(smt.eq(left, right))
        if op == "!=":
            return boolint(smt.not_(smt.eq(left, right)))
        if op == "<":
            return boolint(smt.lt(left, right))
        if op == "<=":
            return boolint(smt.le(left, right))
        if op == ">":
            return boolint(smt.gt(left, right))
        if op == ">=":
            return boolint(smt.ge(left, right))
        if op == "&&":
            return boolint(
                smt.and_(
                    smt.not_(smt.eq(left, smt.int_const(0))),
                    smt.not_(smt.eq(right, smt.int_const(0))),
                )
            )
        if op == "||":
            return boolint(
                smt.or_(
                    smt.not_(smt.eq(left, smt.int_const(0))),
                    smt.not_(smt.eq(right, smt.int_const(0))),
                )
            )
        raise CTypeError(f"unknown operator {op}")

    def _eval_assign(self, expr: Assign, frame: "_Frame", state: CState):
        for s1, value in self._eval(expr.rhs, frame, state):
            yield from self._store_lvalue(expr.lhs, value, frame, s1)

    def _store_lvalue(self, lhs: CExpr, value: smt.Term, frame: "_Frame", state: CState):
        if isinstance(lhs, VarRef):
            address = frame.env.get(lhs.name, self.global_env.get(lhs.name))
            if address is None:
                raise CTypeError(f"unknown identifier {lhs.name}")
            yield state.write(address, value), value
            return
        if isinstance(lhs, Deref):
            pointee = self._pointee_type(lhs.ptr, frame)
            for s1, ptr in self._eval(lhs.ptr, frame, state):
                for s2, base in self._resolve_pointer(
                    s1, ptr, pointee, frame, f"*{_describe(lhs.ptr)}"
                ):
                    yield s2.write(base, value), value
            return
        if isinstance(lhs, Field):
            for s1, address in self._field_address(lhs, frame, state):
                assert address.is_const
                yield s1.write(address.payload, value), value  # type: ignore[arg-type]
            return
        raise CTypeError(f"cannot assign to {lhs!r}")

    # -- memory ------------------------------------------------------------------------

    def _pointee_type(self, ptr_expr: CExpr, frame: "_Frame") -> CType:
        typ = frame.types.type_of(ptr_expr)
        if isinstance(typ, PtrType):
            return typ.elem
        return Scalar("int")

    def _load(
        self,
        state: CState,
        ptr: smt.Term,
        pointee: CType,
        offset: int,
        frame: "_Frame",
        description: str,
    ) -> Iterator[tuple[CState, smt.Term]]:
        for s1, base in self._resolve_pointer(state, ptr, pointee, frame, description):
            yield s1, self._read_cell(s1, base + offset)

    def _resolve_pointer(
        self,
        state: CState,
        ptr: smt.Term,
        pointee: CType,
        frame: "_Frame",
        description: str,
    ) -> Iterator[tuple[CState, int]]:
        """All feasible targets of a dereference; reports NULL paths.

        This is the expensive operation the paper's §4.6 describes:
        "translating symbolic pointers ... becomes slow because we first
        need to check if each pointer target is valid in the current path
        condition by calling the SMT solver".
        """
        ptr = simplify(ptr)
        # Null-dereference check: is ptr = 0 feasible here?
        null_case = smt.eq(ptr, smt.int_const(0))
        if ptr.is_const:
            if ptr.payload == 0:
                warning = self.warn(
                    CErrKind.NULL_DEREF, f"{description} is NULL", frame.fn.name
                )
                self._relay_witness(warning, state, ptr)
                return
        elif self.feasible(state, null_case):
            warning = self.warn(
                CErrKind.NULL_DEREF, f"{description} may be NULL", frame.fn.name
            )
            self._relay_witness(warning, state, ptr)
        state = state.and_guard(smt.not_(null_case)) if not ptr.is_const else state
        candidates = sorted(
            address
            for address in _constant_leaves(ptr)
            if address in state.objects or address in self._base_objects(state)
        )
        found = False
        for address in candidates:
            eq_case = smt.eq(ptr, smt.int_const(address))
            if ptr.is_const:
                if ptr.payload == address:
                    found = True
                    yield state, address
                continue
            if self.feasible(state, eq_case):
                found = True
                yield state.and_guard(eq_case), address
        if found or ptr.is_const:
            return
        # Unconstrained pointer: lazily materialize a fresh object.
        if frame.lazy_budget <= 0:
            self.warn(
                CErrKind.UNSUPPORTED,
                f"{description}: lazy initialization budget exhausted",
                frame.fn.name,
            )
            return
        frame.lazy_budget -= 1
        self.stats["lazy_objects"] += 1
        init = self.fresh_symbol("mem")
        new_state, obj = self.allocate_object(
            state, pointee, f"lazy:{description}", init=init
        )
        constrained = new_state.and_guard(smt.eq(ptr, smt.int_const(obj.base)))
        yield constrained, obj.base

    def _base_objects(self, state: CState) -> dict[int, CObj]:
        return state.objects

    # -- calls -----------------------------------------------------------------------

    def _eval_call(self, expr: Call, frame: "_Frame", state: CState):
        # Evaluate arguments left to right.
        def eval_args(args, s, acc):
            if not args:
                yield s, list(acc)
                return
            for s1, value in self._eval(args[0], frame, s):
                yield from eval_args(args[1:], s1, acc + [value])

        for s1, arg_values in eval_args(list(expr.args), state, []):
            yield from self._dispatch_call(expr, arg_values, frame, s1)

    def _dispatch_call(self, expr: Call, args: list[smt.Term], frame: "_Frame", state: CState):
        target: Optional[str] = None
        if isinstance(expr.fn, VarRef) and expr.fn.name in self.program.functions:
            target = expr.fn.name
            yield from self._call_named(target, expr, args, frame, state)
            return
        # A call through a function pointer: resolve to function addresses.
        for s1, fn_value in self._eval(expr.fn, frame, state):
            fn_value = simplify(fn_value)
            resolved = False
            for address in sorted(_constant_leaves(fn_value)):
                name = self._fn_by_address.get(address)
                if name is None:
                    continue
                eq_case = smt.eq(fn_value, smt.int_const(address))
                if fn_value.is_const:
                    if fn_value.payload == address:
                        resolved = True
                        yield from self._call_named(name, expr, args, frame, s1)
                elif self.feasible(s1, eq_case):
                    resolved = True
                    yield from self._call_named(
                        name, expr, args, frame, s1.and_guard(eq_case)
                    )
            if not resolved:
                # A symbolic function pointer: beyond the executor (Case 4).
                self.warn(
                    CErrKind.UNSUPPORTED,
                    f"call through symbolic function pointer "
                    f"{_describe(expr.fn)} in {frame.fn.name}",
                    frame.fn.name,
                )
                yield s1, smt.int_const(0)

    def _call_named(self, name: str, expr: Call, args: list[smt.Term], frame: "_Frame", state: CState):
        callee = self.program.functions[name]
        use_hook = callee.body is None or callee.mix == "typed"
        if use_hook and self.call_hook is not None:
            for s1, ret in self.call_hook(name, args, state):
                yield s1, ret if ret is not None else smt.int_const(0)
            return
        if callee.body is None:
            # Extern with no driver attached: havoc the return value.
            yield state, self.fresh_symbol(f"ret_{name}")
            return
        for result in self.execute_function(callee, args, state, frame.depth + 1):
            ret = result.ret if result.ret is not None else smt.int_const(0)
            yield result.state, ret


@dataclass
class _Frame:
    fn: CFunction
    env: dict[str, int]
    types: TypeInfo
    depth: int
    # No default: the caller must pass config.max_lazy_objects_per_path,
    # otherwise a frame silently ignores the configured lazy-object cap.
    lazy_budget: int


def _collect_locals(stmt: CStmt, env: dict[str, CType]) -> None:
    if isinstance(stmt, VarDecl):
        env[stmt.name] = stmt.typ
    elif isinstance(stmt, Block):
        for s in stmt.stmts:
            _collect_locals(s, env)
    elif isinstance(stmt, If):
        _collect_locals(stmt.then, env)
        if stmt.els is not None:
            _collect_locals(stmt.els, env)
    elif isinstance(stmt, While):
        _collect_locals(stmt.body, env)


def _constant_leaves(term: smt.Term) -> set[int]:
    """Integer constants appearing in a term (candidate addresses)."""
    from repro.smt.terms import Kind

    out: set[int] = set()
    for sub in term.subterms():
        if sub.kind is Kind.CONST_INT:
            out.add(sub.payload)  # type: ignore[arg-type]
    return out


def _describe(expr: CExpr) -> str:
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, Deref):
        return f"*{_describe(expr.ptr)}"
    if isinstance(expr, Field):
        sep = "->" if expr.arrow else "."
        return f"{_describe(expr.obj)}{sep}{expr.name}"
    if isinstance(expr, AddrOf):
        return f"&{_describe(expr.target)}"
    if isinstance(expr, Call):
        return f"{_describe(expr.fn)}(...)"
    return type(expr).__name__.lower()
