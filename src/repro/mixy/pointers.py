"""Andersen-style may points-to analysis and call graph for mini-C.

MIXY's substitute for "CIL's built-in pointer analysis" (paper §4.2): an
inclusion-based, flow- and context-insensitive analysis.  Abstract
objects are globals, locals (per function), allocation sites (one per
``malloc``, conflating call sites — the imprecision the paper's §4.6
discusses), string literals, external returns, function objects (for
function pointers), and per-object struct fields.

The analysis is used by the MIXY driver to

- resolve calls through function pointers (the call graph),
- restore aliasing relationships when switching from a symbolic block to
  a typed block (§4.2: "we add constraints to require that all
  may-aliased expressions have the same type").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.mixy.c.ast import (
    AddrOf,
    Assign,
    Assume,
    Binary,
    Block,
    Call,
    Cast,
    CExpr,
    Check,
    CFunction,
    CProgram,
    CStmt,
    CType,
    Deref,
    ExprStmt,
    Field,
    FunType,
    If,
    IntLit,
    Malloc,
    NullLit,
    PtrType,
    Return,
    StrLit,
    StructType,
    Unary,
    VarDecl,
    VarRef,
    While,
)
from repro.mixy.c.typeinfo import CTypeError, TypeInfo

Node = tuple  # hashable abstract location / variable keys


def obj_global(name: str) -> Node:
    return ("global", name)


def obj_local(fn: str, name: str) -> Node:
    return ("local", fn, name)


def obj_malloc(site: int) -> Node:
    return ("malloc", site)


def obj_fun(name: str) -> Node:
    return ("fun", name)


def obj_field(base: Node, fname: str) -> Node:
    return ("field", base, fname)


def obj_ret(fn: str) -> Node:
    return ("ret", fn)


def obj_ext(name: str) -> Node:
    return ("ext", name)


@dataclass
class _Constraints:
    copies: dict[Node, set[Node]] = field(default_factory=dict)  # src -> {dst}
    loads: list[tuple[Node, Node, Optional[str]]] = field(default_factory=list)
    stores: list[tuple[Node, Node, Optional[str]]] = field(default_factory=list)

    def copy(self, src: Node, dst: Node) -> None:
        if src != dst:
            self.copies.setdefault(src, set()).add(dst)

    def load(self, dst: Node, ptr: Node, fname: Optional[str] = None) -> None:
        self.loads.append((dst, ptr, fname))

    def store(self, ptr: Node, src: Node, fname: Optional[str] = None) -> None:
        self.stores.append((ptr, src, fname))


class PointsTo:
    """Builds and solves the inclusion constraints for a program."""

    def __init__(self, program: CProgram) -> None:
        self.program = program
        self._constraints = _Constraints()
        self._pts: dict[Node, set[Node]] = {}
        self._expr_nodes: dict[int, Node] = {}  # id(expr) -> node
        self._temp_counter = itertools.count(1)
        self._malloc_counter = itertools.count(1)
        self._indirect_calls: list[tuple[str, Call]] = []
        self._resolved_calls: dict[int, set[str]] = {}
        self._build()
        self._solve()

    # -- public queries ------------------------------------------------------------

    def pts(self, node: Node) -> set[Node]:
        return self._pts.get(node, set())

    def expr_node(self, expr: CExpr) -> Optional[Node]:
        return self._expr_nodes.get(id(expr))

    def pts_of_expr(self, expr: CExpr) -> set[Node]:
        node = self.expr_node(expr)
        return self.pts(node) if node is not None else set()

    def may_alias(self, e1: CExpr, e2: CExpr) -> bool:
        return bool(self.pts_of_expr(e1) & self.pts_of_expr(e2))

    def callees(self, call: Call, fn: str) -> list[str]:
        """Possible targets of a call (direct or through a pointer)."""
        if isinstance(call.fn, VarRef) and call.fn.name in self.program.functions:
            return [call.fn.name]
        return sorted(self._resolved_calls.get(id(call), set()))

    def node_of_lvalue(self, fn: str, expr: CExpr) -> Optional[Node]:
        """The storage node an lvalue denotes, when statically unique."""
        if isinstance(expr, VarRef):
            if expr.name in self.program.globals:
                return obj_global(expr.name)
            return obj_local(fn, expr.name)
        return None

    # -- constraint generation -------------------------------------------------------

    def _build(self) -> None:
        for g in self.program.globals.values():
            if g.init is not None:
                typeinfo = TypeInfo(self.program, {})
                node = self._rvalue("<global-init>", g.init, typeinfo)
                if node is not None:
                    self._constraints.copy(node, obj_global(g.name))
        for fn in self.program.functions.values():
            if fn.body is None:
                continue
            env = {p.name: p.typ for p in fn.params}
            _collect_local_types(fn.body, env)
            typeinfo = TypeInfo(self.program, env)
            self._stmt(fn.name, fn.body, typeinfo)

    def _temp(self) -> Node:
        return ("tmp", next(self._temp_counter))

    def _stmt(self, fn: str, node: CStmt, typeinfo: TypeInfo) -> None:
        if isinstance(node, Block):
            for s in node.stmts:
                self._stmt(fn, s, typeinfo)
        elif isinstance(node, VarDecl):
            if node.init is not None:
                src = self._rvalue(fn, node.init, typeinfo)
                if src is not None:
                    self._constraints.copy(src, obj_local(fn, node.name))
        elif isinstance(node, ExprStmt):
            self._rvalue(fn, node.expr, typeinfo)
        elif isinstance(node, If):
            self._rvalue(fn, node.cond, typeinfo)
            self._stmt(fn, node.then, typeinfo)
            if node.els is not None:
                self._stmt(fn, node.els, typeinfo)
        elif isinstance(node, While):
            self._rvalue(fn, node.cond, typeinfo)
            self._stmt(fn, node.body, typeinfo)
        elif isinstance(node, Return):
            if node.value is not None:
                src = self._rvalue(fn, node.value, typeinfo)
                if src is not None:
                    self._constraints.copy(src, obj_ret(fn))

    def _rvalue(self, fn: str, expr: CExpr, typeinfo: TypeInfo) -> Optional[Node]:
        """Node holding the expression's points-to set (None for scalars)."""
        node = self._rvalue_uncached(fn, expr, typeinfo)
        if node is not None:
            self._expr_nodes[id(expr)] = node
        return node

    def _rvalue_uncached(
        self, fn: str, expr: CExpr, typeinfo: TypeInfo
    ) -> Optional[Node]:
        if isinstance(expr, (IntLit, NullLit)):
            return None
        if isinstance(expr, StrLit):
            temp = self._temp()
            self._seed(temp, ("strlit", expr.value))
            return temp
        if isinstance(expr, VarRef):
            if expr.name in self.program.functions:
                temp = self._temp()
                self._seed(temp, obj_fun(expr.name))
                return temp
            if expr.name in self.program.globals:
                return obj_global(expr.name)
            return obj_local(fn, expr.name)
        if isinstance(expr, Deref):
            ptr = self._rvalue(fn, expr.ptr, typeinfo)
            if ptr is None:
                return None
            temp = self._temp()
            self._constraints.load(temp, ptr)
            return temp
        if isinstance(expr, AddrOf):
            target_obj = self._lvalue_object(fn, expr.target, typeinfo)
            temp = self._temp()
            if target_obj is not None:
                if isinstance(target_obj, tuple) and target_obj[0] == "<indirect>":
                    # &(*p) is p; &(p->f) handled via field objects below.
                    return target_obj[1]
                self._seed(temp, target_obj)
            return temp
        if isinstance(expr, Field):
            obj = self._rvalue(fn, expr.obj, typeinfo)
            if obj is None:
                return None
            temp = self._temp()
            if expr.arrow:
                self._constraints.load(temp, obj, expr.name)
            else:
                # Direct field of a known storage object.
                base = self._lvalue_object(fn, expr.obj, typeinfo)
                if base is not None and not (
                    isinstance(base, tuple) and base[0] == "<indirect>"
                ):
                    self._constraints.copy(obj_field(base, expr.name), temp)
            return temp
        if isinstance(expr, Unary):
            self._rvalue(fn, expr.operand, typeinfo)
            return None
        if isinstance(expr, Binary):
            left = self._rvalue(fn, expr.left, typeinfo)
            self._rvalue(fn, expr.right, typeinfo)
            if expr.op in ("+", "-") and left is not None:
                return left  # pointer arithmetic stays within the object
            return None
        if isinstance(expr, Assign):
            return self._assign(fn, expr, typeinfo)
        if isinstance(expr, Call):
            return self._call(fn, expr, typeinfo)
        if isinstance(expr, Malloc):
            site = next(self._malloc_counter)
            temp = self._temp()
            self._seed(temp, obj_malloc(site))
            return temp
        if isinstance(expr, Cast):
            return self._rvalue(fn, expr.operand, typeinfo)
        if isinstance(expr, (Assume, Check)):
            self._rvalue(fn, expr.cond, typeinfo)
            return None
        return None

    def _assign(self, fn: str, expr: Assign, typeinfo: TypeInfo) -> Optional[Node]:
        src = self._rvalue(fn, expr.rhs, typeinfo)
        lhs = expr.lhs
        if src is None:
            self._rvalue(fn, lhs, typeinfo)  # still record lhs nodes
            return None
        if isinstance(lhs, VarRef):
            dst = (
                obj_global(lhs.name)
                if lhs.name in self.program.globals
                else obj_local(fn, lhs.name)
            )
            self._constraints.copy(src, dst)
            self._expr_nodes[id(lhs)] = dst
            return src
        if isinstance(lhs, Deref):
            ptr = self._rvalue(fn, lhs.ptr, typeinfo)
            if ptr is not None:
                self._constraints.store(ptr, src)
            return src
        if isinstance(lhs, Field):
            if lhs.arrow:
                ptr = self._rvalue(fn, lhs.obj, typeinfo)
                if ptr is not None:
                    self._constraints.store(ptr, src, lhs.name)
            else:
                base = self._lvalue_object(fn, lhs.obj, typeinfo)
                if base is not None and not (
                    isinstance(base, tuple) and base[0] == "<indirect>"
                ):
                    self._constraints.copy(src, obj_field(base, lhs.name))
            return src
        return src

    def _call(self, fn: str, expr: Call, typeinfo: TypeInfo) -> Optional[Node]:
        arg_nodes = [self._rvalue(fn, a, typeinfo) for a in expr.args]
        if isinstance(expr.fn, VarRef) and expr.fn.name in self.program.functions:
            targets = [expr.fn.name]
            fn_node = None
        else:
            fn_node = self._rvalue(fn, expr.fn, typeinfo)
            targets = []
            self._indirect_calls.append((fn, expr))
        temp = self._temp()
        self._link_call(expr, targets, arg_nodes, temp)
        self._call_args: dict[int, tuple[list[Optional[Node]], Node]]
        if not hasattr(self, "_call_arg_map"):
            self._call_arg_map = {}
        self._call_arg_map[id(expr)] = (arg_nodes, temp, fn_node)
        return temp

    def _link_call(
        self,
        call: Call,
        targets: Iterable[str],
        arg_nodes: list[Optional[Node]],
        result: Node,
    ) -> None:
        for target in targets:
            callee = self.program.functions.get(target)
            if callee is None:
                continue
            if callee.body is None and isinstance(callee.ret, PtrType):
                # External function returning a pointer: its own object.
                self._seed(obj_ret(target), obj_ext(target))
            for i, arg in enumerate(arg_nodes):
                if arg is not None and i < len(callee.params):
                    self._constraints.copy(arg, obj_local(target, callee.params[i].name))
            self._constraints.copy(obj_ret(target), result)

    def _lvalue_object(self, fn: str, expr: CExpr, typeinfo: TypeInfo):
        """The abstract object an lvalue denotes (for &)."""
        if isinstance(expr, VarRef):
            if expr.name in self.program.globals:
                return obj_global(expr.name)
            if expr.name in self.program.functions:
                return obj_fun(expr.name)
            return obj_local(fn, expr.name)
        if isinstance(expr, Deref):
            inner = self._rvalue(fn, expr.ptr, typeinfo)
            return ("<indirect>", inner) if inner is not None else None
        return None

    def _seed(self, node: Node, obj: Node) -> None:
        self._pts.setdefault(node, set()).add(obj)

    # -- solving -----------------------------------------------------------------

    def _solve(self) -> None:
        changed = True
        rounds = 0
        while changed and rounds < 100:
            rounds += 1
            changed = self._solve_round()
            changed |= self._resolve_indirect_calls()

    def _solve_round(self) -> bool:
        changed_any = False
        inner_changed = True
        while inner_changed:
            inner_changed = False
            for src, dsts in list(self._constraints.copies.items()):
                src_pts = self._pts.get(src)
                if not src_pts:
                    continue
                for dst in dsts:
                    dst_pts = self._pts.setdefault(dst, set())
                    before = len(dst_pts)
                    dst_pts |= src_pts
                    if len(dst_pts) != before:
                        inner_changed = True
            for dst, ptr, fname in self._constraints.loads:
                for obj in list(self._pts.get(ptr, ())):
                    src = obj if fname is None else obj_field(obj, fname)
                    src_pts = self._pts.get(src)
                    if not src_pts:
                        continue
                    dst_pts = self._pts.setdefault(dst, set())
                    before = len(dst_pts)
                    dst_pts |= src_pts
                    if len(dst_pts) != before:
                        inner_changed = True
            for ptr, src, fname in self._constraints.stores:
                src_pts = self._pts.get(src)
                if not src_pts:
                    continue
                for obj in list(self._pts.get(ptr, ())):
                    dst = obj if fname is None else obj_field(obj, fname)
                    dst_pts = self._pts.setdefault(dst, set())
                    before = len(dst_pts)
                    dst_pts |= src_pts
                    if len(dst_pts) != before:
                        inner_changed = True
            changed_any |= inner_changed
        return changed_any

    def _resolve_indirect_calls(self) -> bool:
        changed = False
        for fn, call in self._indirect_calls:
            arg_nodes, result, fn_node = self._call_arg_map[id(call)]
            if fn_node is None:
                continue
            targets = {
                obj[1] for obj in self._pts.get(fn_node, ()) if obj[0] == "fun"
            }
            known = self._resolved_calls.setdefault(id(call), set())
            new = targets - known
            if new:
                changed = True
                known |= new
                self._link_call(call, new, arg_nodes, result)
        return changed


def _collect_local_types(stmt: CStmt, env: dict[str, CType]) -> None:
    if isinstance(stmt, VarDecl):
        env[stmt.name] = stmt.typ
    elif isinstance(stmt, Block):
        for s in stmt.stmts:
            _collect_local_types(s, env)
    elif isinstance(stmt, If):
        _collect_local_types(stmt.then, env)
        if stmt.els is not None:
            _collect_local_types(stmt.els, env)
    elif isinstance(stmt, While):
        _collect_local_types(stmt.body, env)
