"""MIXY: the paper's prototype of MIX for C (Section 4).

MIXY detects null-pointer errors by mixing a flow-insensitive null/nonnull
*type qualifier inference* (a reimplementation of Foster et al. 2006, the
paper's CilQual) with a C symbolic executor (standing in for Otter).

Subpackages and modules:

- :mod:`repro.mixy.c` -- the mini-C frontend (AST, lexer, parser, types),
  substituting for CIL;
- :mod:`repro.mixy.pointers` -- Andersen-style may points-to analysis and
  call-graph construction, substituting for CIL's pointer analysis;
- :mod:`repro.mixy.qual` -- the qualifier inference engine;
- :mod:`repro.mixy.symexec` -- the mini-C symbolic executor;
- :mod:`repro.mixy.driver` -- the block-switching driver with the
  machinery of Sections 4.1-4.4: qualifier/symbolic-value translation
  with optimistic assumptions and fixpoint iteration, the aliasing-aware
  memory model, block caching, and recursion handling;
- :mod:`repro.mixy.corpus` -- vsftpd-like benchmark programs transcribing
  the paper's four case studies.

Entry point: :class:`repro.mixy.driver.Mixy`.
"""

_LAZY = {"Mixy", "MixyConfig", "Warning_"}

__all__ = ["Mixy", "MixyConfig", "Warning_"]


def __getattr__(name: str):
    # Loaded lazily so the frontend subpackage can be imported while the
    # driver is under construction in tests of individual components.
    if name in _LAZY:
        from repro.mixy import driver

        return getattr(driver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
