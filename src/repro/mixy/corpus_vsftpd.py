"""A miniature vsftpd: a multi-module mini-C program in the shape of
vsftpd-2.0.7, the paper's benchmark.

The real daemon is ~12 kLoC of C which our from-scratch frontend cannot
ingest; this transcription reconstructs the modules the paper's four
cases live in (``sysutil``, ``sysstr``, the sockaddr utilities,
``sysdeputil``'s exit hook) plus session/command-loop scaffolding, all
within the supported mini-C subset.  It carries the paper's single
``nonnull`` annotation on ``sysutil_free`` and four optional MIX
annotation sites — one per case study.

``mini_vsftpd(annotations)`` renders the program with any subset of
{"sockaddr_clear", "str_next_dirent", "main_BLOCK", "sysutil_exit_BLOCK"}
enabled; each annotation eliminates the corresponding family of false
positives, at increasing analysis cost (EXPERIMENTS.md E2').
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet

ANNOTATION_SITES = (
    "sockaddr_clear",
    "str_next_dirent",
    "main_BLOCK",
    "sysutil_exit_BLOCK",
)


def mini_vsftpd(annotations: AbstractSet[str] = frozenset()) -> str:
    unknown = set(annotations) - set(ANNOTATION_SITES)
    if unknown:
        raise ValueError(f"unknown annotation sites: {sorted(unknown)}")

    def sym(site: str) -> str:
        return "MIX(symbolic)" if site in annotations else ""

    def typ(site: str) -> str:
        return "MIX(typed)" if site in annotations else ""

    return f"""
/* ================= tunables.c ================= */
char *tunable_pasv_address;
char *tunable_banner_file;
char *tunable_listen_address;
int tunable_max_clients;
int tunable_listen_port;

/* ================= sysutil.c ================= */
void sysutil_free(void *nonnull p_ptr) MIX(typed);
void exit_model(int code);

int *sysutil_malloc_int(void) {{
  return (int *) malloc(sizeof(int));
}}

void (*s_exit_func)(void);

void sysutil_set_exit_func(void (*f)(void)) {{
  s_exit_func = f;
}}

void sysutil_exit_BLOCK(void) {typ("sysutil_exit_BLOCK")} {{
  if (s_exit_func != NULL) {{
    s_exit_func();
  }}
}}

void sysutil_exit(int exit_code) {{
  sysutil_exit_BLOCK();
  exit_model(exit_code);
}}

/* ================= sysstr.c ================= */
struct mystr {{
  char *p_buf;
  int len;
  int alloc_bytes;
}};

void str_alloc_text(struct mystr *p_str, char *p_src) MIX(typed) {{
  p_str->p_buf = p_src;
  p_str->len = 1;
  p_str->alloc_bytes = 32;
}}

void str_empty(struct mystr *p_str) {{
  p_str->p_buf = "";
  p_str->len = 0;
}}

void str_copy(struct mystr *p_dest, struct mystr *p_src) {{
  p_dest->p_buf = p_src->p_buf;
  p_dest->len = p_src->len;
}}

int str_getlen(struct mystr *p_str) {{
  return p_str->len;
}}

int str_isempty(struct mystr *p_str) {{
  return p_str->len == 0;
}}

char *sysutil_next_dirent(int p_dirent) MIX(typed) {{
  if (p_dirent == 0) {{
    return NULL;
  }}
  return "dirent";
}}

void str_next_dirent(struct mystr *p_str, int d) {sym("str_next_dirent")} {{
  char *p_filename = sysutil_next_dirent(d);
  if (p_filename != NULL) {{
    str_alloc_text(p_str, p_filename);
  }}
}}

/* ================= syssock.c ================= */
struct sockaddr {{
  int family;
  int port;
  int addr;
}};

struct hostent {{
  int h_addrtype;
}};

void die(char *p_text);

struct hostent *gethostbyname_model(char *p_name) {{
  struct hostent *hent = (struct hostent *) malloc(sizeof(struct hostent));
  if (p_name == NULL) {{
    hent->h_addrtype = 2;
  }} else {{
    hent->h_addrtype = 10;
  }}
  return hent;
}}

void sockaddr_clear(struct sockaddr **p_sock) {sym("sockaddr_clear")} {{
  if (*p_sock != NULL) {{
    sysutil_free(*p_sock);
    *p_sock = NULL;
  }}
}}

void sockaddr_alloc(struct sockaddr **p_sock) {{
  *p_sock = (struct sockaddr *) malloc(sizeof(struct sockaddr));
  (*p_sock)->family = 0;
  (*p_sock)->port = 0;
}}

void sockaddr_alloc_ipv4(struct sockaddr **p_sock) {{
  sockaddr_alloc(p_sock);
  (*p_sock)->family = 2;
}}

void sockaddr_alloc_ipv6(struct sockaddr **p_sock) {{
  sockaddr_alloc(p_sock);
  (*p_sock)->family = 10;
}}

void sockaddr_set_port(struct sockaddr *p_sock, int port) {{
  p_sock->port = port;
}}

int sockaddr_get_port(struct sockaddr *p_sock) {{
  return p_sock->port;
}}

void dns_resolve(struct sockaddr **p_sock, char *p_name) {{
  struct hostent *hent = gethostbyname_model(p_name);
  sockaddr_clear(p_sock);
  if (hent->h_addrtype == 2) {{
    sockaddr_alloc_ipv4(p_sock);
  }} else {{
    if (hent->h_addrtype == 10) {{
      sockaddr_alloc_ipv6(p_sock);
    }} else {{
      die("gethostbyname(): neither IPv4 nor IPv6");
    }}
  }}
}}

/* ================= session.c ================= */
struct vsf_session {{
  struct sockaddr *p_local_addr;
  struct sockaddr *p_remote_addr;
  struct mystr user_str;
  struct mystr remote_ip_str;
  int is_anonymous;
  int login_fails;
}};

void session_init(struct vsf_session *p_sess) {{
  p_sess->p_local_addr = NULL;
  p_sess->p_remote_addr = NULL;
  str_empty(&(p_sess->user_str));
  str_empty(&(p_sess->remote_ip_str));
  p_sess->is_anonymous = 0;
  p_sess->login_fails = 0;
}}

void session_shutdown(struct vsf_session *p_sess) {{
  sockaddr_clear(&(p_sess->p_local_addr));
  sockaddr_clear(&(p_sess->p_remote_addr));
}}

/* ================= netio.c ================= */
void main_BLOCK(struct sockaddr **p_sock) {sym("main_BLOCK")} {{
  *p_sock = NULL;
  dns_resolve(p_sock, tunable_pasv_address);
}}

int bind_listen(struct sockaddr *p_accept) {{
  if (p_accept == NULL) {{
    return 0 - 1;
  }}
  sockaddr_set_port(p_accept, tunable_listen_port);
  return sockaddr_get_port(p_accept);
}}

/* ================= postlogin.c ================= */
int handle_dir_listing(struct vsf_session *p_sess, int dir_handle) {{
  int count = 0;
  struct mystr entry_str;
  str_empty(&entry_str);
  while (dir_handle > 0) {{
    str_next_dirent(&entry_str, dir_handle);
    if (str_isempty(&entry_str)) {{
      dir_handle = 0;
    }} else {{
      count = count + 1;
      dir_handle = dir_handle - 1;
    }}
  }}
  sysutil_free(entry_str.p_buf);
  return count;
}}

/* The Case 4 pairing: a symbolic block that needs sysutil_exit, which
   in turn needs its function-pointer call extracted into a typed block. */
void login_check(struct vsf_session *p_sess) {sym("sysutil_exit_BLOCK")} {{
  p_sess->login_fails = p_sess->login_fails + 1;
  if (p_sess->login_fails > 3) {{
    sysutil_exit(1);
  }}
}}

int handle_user_command(struct vsf_session *p_sess, int cmd) {{
  if (cmd == 1) {{
    return handle_dir_listing(p_sess, 4);
  }}
  if (cmd == 2) {{
    login_check(p_sess);
    return 0;
  }}
  return 0 - 1;
}}

/* ================= main.c ================= */
void cleanup_handler(void) {{
  exit_model(0);
}}

int main(void) {{
  struct vsf_session the_session;
  struct sockaddr *p_addr;
  int rc;
  int cmd;
  session_init(&the_session);
  sysutil_set_exit_func(cleanup_handler);
  main_BLOCK(&p_addr);
  rc = bind_listen(p_addr);
  cmd = 1;
  while (cmd <= 2) {{
    rc = handle_user_command(&the_session, cmd);
    cmd = cmd + 1;
  }}
  session_shutdown(&the_session);
  sysutil_free(p_addr);
  return rc;
}}
"""


def annotation_subsets() -> list[FrozenSet[str]]:
    """The cumulative annotation schedule used by the scale benchmark."""
    out: list[FrozenSet[str]] = [frozenset()]
    current: set[str] = set()
    for site in ANNOTATION_SITES:
        current.add(site)
        out.append(frozenset(current))
    return out


# -- the parallel-scale corpus (EXPERIMENTS.md E16) ---------------------------

#: Symbolic worker blocks of ``parallel_vsftpd``, in frontier (sorted)
#: order.  Styled after vsftpd's utility modules.
PARALLEL_BLOCKS = (
    "crunch_access",
    "crunch_banner",
    "crunch_chdir",
    "crunch_dirlist",
    "crunch_epsv",
    "crunch_filter",
)


def _guard(block: int, depth: int, arm: int) -> str:
    """A linear-arithmetic branch guard over the block's int parameters.

    Coefficients are a fixed function of (block, depth, arm) so the
    program is deterministic; they are spread out so sibling branches
    carve distinct regions and a good share of nested combinations are
    infeasible — those forks force full DPLL(T) refutations, which is
    where a real analysis spends its time."""
    c1 = 2 + (17 * block + 3 * depth + 41 * arm) % 269
    c2 = 1 + (5 * block + 29 * depth + 2 * arm) % 283
    c3 = 1 + (23 * block + 2 * depth + 5 * arm) % 241
    k = 3 + (7 * block + 11 * depth + 13 * arm) % 251
    cmp = "<" if (block + depth + arm) % 2 == 0 else ">"
    return f"{c1} * a + {c2} * b - {c3} * c {cmp} {k} * d - {k + depth}"


def _arith_tree(block: int, depth: int, path: int = 0) -> str:
    """A nested if/else tree of ``_guard`` branches; each fork makes the
    executor solve both branch feasibilities against a growing path
    condition."""
    if depth == 0:
        return f"    r = r + {path + 1};"
    then_arm = _arith_tree(block, depth - 1, 2 * path)
    else_arm = _arith_tree(block, depth - 1, 2 * path + 1)
    guard = _guard(block, depth, path % 3)
    return (
        f"    if ({guard}) {{\n{then_arm}\n    }} else {{\n{else_arm}\n    }}"
    )


def parallel_vsftpd(depth: int = 4) -> str:
    """A vsftpd-shaped corpus for the parallel engine (E16): six heavy
    symbolic utility blocks over a staircase of session globals.

    Each block is dominated by a ``depth``-deep linear-arithmetic
    branching tree over its parameters — solver work whose formulas do
    not mention the globals.  The staircase couples the blocks *against*
    the frontier's sorted order: ``crunch_filter`` retires
    ``g_stage_6`` outright, and each earlier block retires the next
    stage only once the later block's conclusion has reached the
    qualifier graph — so exactly one stage falls per fixpoint round, the
    calling context of every block changes every round (the context
    carries all globals), and the whole frontier is re-analyzed round
    after round.  A serial run re-solves every arithmetic query each
    round; the parallel engine's block-deterministic naming re-derives
    identical terms, so from round two on its queries are warm-cache
    hits.  The run ends when the staircase reaches ``g_stage_2``, which
    ``crunch_filter`` has been handing to ``sysutil_free``'s nonnull
    parameter all along: one deterministic warning."""
    stages = "\n".join(f"int *g_stage_{s};" for s in range(1, 7))
    blocks = []
    for i, name in enumerate(PARALLEL_BLOCKS):
        tail: str
        if name == PARALLEL_BLOCKS[-1]:
            # Last in sorted order: starts the staircase unconditionally
            # and reports the end of it.  The free comes first: a typed
            # call havocs global cells, and a havoc'd final value carries
            # no null conclusion back to the qualifier graph.
            tail = (
                "  sysutil_free(g_stage_2);\n"
                "  g_stage_6 = NULL;"
            )
        else:
            # Block i retires stage i+1 once stage i+2 is known null;
            # the owner of stage i+2 sorts *after* this block, so the
            # trigger is only visible one round later.
            tail = (
                f"  if (g_stage_{i + 2} == NULL) {{\n"
                f"    g_stage_{i + 1} = NULL;\n"
                f"  }}"
            )
        # The bounding shell keeps every parameter in a finite range so
        # the int solver's branch-and-bound stays shallow; the tree's
        # queries are then hard but bounded.
        shell_open = "\n".join(
            f"  if ({v} < 1) {{ return 0; }}\n  if ({v} > 40) {{ return 0; }}"
            for v in "abcd"
        )
        blocks.append(
            f"int {name}(int a, int b, int c, int d) MIX(symbolic) {{\n"
            f"  int r = 0;\n"
            f"{shell_open}\n"
            f"{_arith_tree(i, depth)}\n"
            f"{tail}\n"
            f"  return r;\n"
            f"}}"
        )
    body = "\n\n".join(blocks)
    calls = "\n".join(
        f"  total = total + {name}(seed + {i}, seed - {2 * i}, "
        f"seed * {i + 2}, limit + {i});"
        for i, name in enumerate(PARALLEL_BLOCKS)
    )
    return f"""
/* ============ sysutil.c (shared with mini_vsftpd) ============ */
void sysutil_free(void *nonnull p_ptr) MIX(typed);

/* ============ session globals: the staircase ============ */
{stages}

/* ============ the worker modules ============ */
{body}

int main(void) {{
  int total;
  int seed;
  int limit;
  total = 0;
  seed = 3;
  limit = 40;
{calls}
  return total;
}}
"""


def property_staircase(depth: int = 4) -> str:
    """The E22 proving corpus: ``parallel_vsftpd``'s staircase with the
    null-deref finding replaced by per-block ``check`` obligations.

    Each worker block accumulates ``r`` over its ``depth``-deep
    arithmetic tree (every leaf adds at least 1) and then asserts
    ``check(r > 0)`` — valid on every path that reaches it, so the
    falsifying branch of each path is an infeasibility query against
    that path's full condition: exactly the solver workload the
    parallel engine warms.  The staircase coupling is unchanged (one
    session global falls per fixpoint round, every block re-analyzed
    every round), so ``repro prove --entry typed --jobs N`` re-derives
    E16's cache compounding on a proving workload; the expected suite
    verdict is a single PROVED with no warnings."""
    stages = "\n".join(f"int *g_stage_{s};" for s in range(1, 7))
    blocks = []
    for i, name in enumerate(PARALLEL_BLOCKS):
        if name == PARALLEL_BLOCKS[-1]:
            tail = "  g_stage_6 = NULL;"
        else:
            tail = (
                f"  if (g_stage_{i + 2} == NULL) {{\n"
                f"    g_stage_{i + 1} = NULL;\n"
                f"  }}"
            )
        shell_open = "\n".join(
            f"  if ({v} < 1) {{ return 0; }}\n  if ({v} > 40) {{ return 0; }}"
            for v in "abcd"
        )
        blocks.append(
            f"int {name}(int a, int b, int c, int d) MIX(symbolic) {{\n"
            f"  int r = 0;\n"
            f"{shell_open}\n"
            f"{_arith_tree(i, depth)}\n"
            f"  check(r > 0);\n"
            f"{tail}\n"
            f"  return r;\n"
            f"}}"
        )
    body = "\n\n".join(blocks)
    calls = "\n".join(
        f"  total = total + {name}(seed + {i}, seed - {2 * i}, "
        f"seed * {i + 2}, limit + {i});"
        for i, name in enumerate(PARALLEL_BLOCKS)
    )
    return f"""
/* ============ session globals: the staircase ============ */
{stages}

/* ============ the worker modules: one property each ============ */
{body}

int main(void) {{
  int total;
  int seed;
  int limit;
  total = 0;
  seed = 3;
  limit = 40;
{calls}
  return total;
}}
"""
