"""Null/nonnull type qualifier inference (paper Section 4, "Type
Qualifiers and Null Pointer Errors").

A reimplementation of the flow-insensitive, monomorphic qualifier
inference of Foster et al. [2006] — the paper's CilQual.  Every pointer
level of every *slot* (local, global, parameter, return, struct field,
allocation site) carries a qualifier variable; program constructs
generate subtyping constraints ``q1 <= q2`` ("a value qualified q1 flows
into a position qualified q2") between them; ``NULL`` literals seed the
constant ``null`` and ``nonnull`` annotations are sinks.  A warning is a
constraint path from ``null`` to ``nonnull``.

Hallmarks of the paper's analysis that this module reproduces:

- *flow-insensitivity*: the order of statements is ignored, so
  ``free(p); p = NULL;`` warns (Case 1);
- *path-insensitivity*: ``if (p != NULL)`` guards are ignored (Cases 1,2);
- *context-insensitivity*: one qualifier per parameter slot conflates all
  call sites (Case 2);
- deep levels of pointer types are *unified* at assignments (standard
  invariance of mutable positions).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Union

from repro.mixy.c.ast import (
    AddrOf,
    Assign,
    Assume,
    Binary,
    Block,
    Call,
    Cast,
    CExpr,
    Check,
    CFunction,
    CProgram,
    CStmt,
    CType,
    Deref,
    ExprStmt,
    Field,
    FunType,
    If,
    IntLit,
    Malloc,
    NullLit,
    PtrType,
    Return,
    StrLit,
    StructType,
    Symbolic,
    Unary,
    VarDecl,
    VarRef,
    While,
    pointer_depth,
)
from repro.mixy.c.typeinfo import CTypeError, TypeInfo


# ---------------------------------------------------------------------------
# Qualifier lattice nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QConst:
    name: str

    def __str__(self) -> str:
        return self.name


NULL = QConst("null")
NONNULL = QConst("nonnull")


class QVar:
    """A qualifier variable; identity-based.

    Rendered ids are per-inference ordinals handed out by
    :meth:`QualInference.fresh_qvar` in deterministic creation order, so
    the printed form of an analysis is a pure function of the program —
    independent of the process hash seed.  The class-level fallback
    counter only serves variables constructed outside an inference
    (tests, ad-hoc graphs)."""

    _ids = itertools.count(1)

    def __init__(self, hint: str, id: Optional[int] = None) -> None:
        self.id = next(self._ids) if id is None else id
        self.hint = hint

    def __str__(self) -> str:
        return f"'{self.hint}#{self.id}"

    def __repr__(self) -> str:
        return str(self)


QNode = Union[QConst, QVar]


@dataclass(frozen=True)
class QualType:
    """A C type with one qualifier variable per pointer level
    (outermost first)."""

    ctype: CType
    quals: tuple[QVar, ...]

    @property
    def top(self) -> Optional[QVar]:
        return self.quals[0] if self.quals else None

    def deref(self) -> "QualType":
        assert isinstance(self.ctype, PtrType)
        return QualType(self.ctype.elem, self.quals[1:])

    def __str__(self) -> str:
        if not self.quals:
            return str(self.ctype)
        return f"{self.ctype} [{', '.join(map(str, self.quals))}]"


# ---------------------------------------------------------------------------
# The constraint graph
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QEdge:
    src: QNode
    dst: QNode
    reason: str


@dataclass
class QualWarning:
    """A source-to-sink flow, with the constraint path as a witness."""

    sink_reason: str
    path: tuple[QEdge, ...]
    source_reason: str = ""
    source_name: str = "NULL"
    sink_name: str = "nonnull"

    def __str__(self) -> str:
        chain = " -> ".join(str(e.src) for e in self.path) or self.source_name
        return (
            f"possible {self.source_name} ({self.source_reason}) flows to "
            f"{self.sink_name} position ({self.sink_reason}); via {chain}"
        )

    @property
    def key(self) -> tuple[str, str]:
        return (self.source_reason, self.sink_reason)


class QualGraph:
    """Subtyping constraints between qualifier nodes, with solving.

    The graph is generic over the two lattice poles: by default the
    nullness pair (``null`` source, ``nonnull`` sink), but any
    source/sink constants work — the taint instance uses
    ``tainted``/``untainted``.
    """

    def __init__(self, source: QConst = NULL, sink: QConst = NONNULL) -> None:
        self._succ: dict[QNode, list[QEdge]] = {}
        self.num_edges = 0
        self.source = source
        self.sink = sink

    def add_flow(self, src: QNode, dst: QNode, reason: str) -> None:
        if src is dst:
            return
        edges = self._succ.setdefault(src, [])
        for e in edges:
            if e.dst is dst:
                return
        edges.append(QEdge(src, dst, reason))
        self.num_edges += 1

    def unify(self, a: QNode, b: QNode, reason: str) -> None:
        self.add_flow(a, b, reason)
        self.add_flow(b, a, reason)

    def may_null(self, node: QNode) -> bool:
        """Is ``node`` reachable from the NULL constant?"""
        return node in self._reachable_from_null()

    def _reachable_from_null(self) -> dict[QNode, Optional[QEdge]]:
        parents: dict[QNode, Optional[QEdge]] = {self.source: None}
        queue: deque[QNode] = deque([self.source])
        while queue:
            node = queue.popleft()
            if isinstance(node, QConst) and node is not self.source:
                # Constants are poles of the lattice, not flow-through
                # nodes: an edge into `nonnull` is a *requirement* on its
                # source, and edges out of `nonnull` seed other variables.
                # Null-ness must not propagate through them.
                continue
            for edge in self._succ.get(node, ()):  # BFS: shortest witnesses
                if edge.dst not in parents:
                    parents[edge.dst] = edge
                    queue.append(edge.dst)
        return parents

    def warnings(self) -> list[QualWarning]:
        """All distinct null-to-nonnull flows.

        One warning per (null source edge, nonnull sink edge) pair, so two
        independent NULL literals reaching the same annotation count as two
        imprecise flows — the unit the paper's evaluation talks about.
        """
        found: list[QualWarning] = []
        seen: set[tuple[str, str]] = set()
        for source_edge in self._succ.get(self.source, ()):
            parents: dict[QNode, Optional[QEdge]] = {source_edge.dst: None}
            queue: deque[QNode] = deque([source_edge.dst])
            while queue:
                node = queue.popleft()
                if isinstance(node, QConst):
                    continue
                for edge in self._succ.get(node, ()):
                    if edge.dst not in parents:
                        parents[edge.dst] = edge
                        queue.append(edge.dst)
            for node in parents:
                for edge in self._succ.get(node, ()):
                    key = (source_edge.reason, edge.reason)
                    if edge.dst is not self.sink or key in seen:
                        continue
                    seen.add(key)
                    path = (source_edge,) + self._witness(parents, node) + (edge,)
                    found.append(
                        QualWarning(
                            edge.reason,
                            path,
                            source_edge.reason,
                            str(self.source).upper(),
                            str(self.sink),
                        )
                    )
        return sorted(found, key=lambda w: (w.sink_reason, w.source_reason))

    @staticmethod
    def _witness(
        parents: dict[QNode, Optional[QEdge]], node: QNode
    ) -> tuple[QEdge, ...]:
        path: list[QEdge] = []
        current: QNode = node
        while True:
            edge = parents[current]
            if edge is None:
                break
            path.append(edge)
            current = edge.src
        return tuple(reversed(path))


# ---------------------------------------------------------------------------
# Inference
# ---------------------------------------------------------------------------

SlotKey = tuple  # ("local", fn, name) | ("global", name) | ("ret", fn) | ...


@dataclass
class QualConfig:
    #: generate ``q <= nonnull`` at every dereference (stricter than the
    #: paper's experiment, which annotated only sysutil_free)
    deref_requires_nonnull: bool = False


class QualInference:
    """Constraint generation and slot management for one program."""

    def __init__(
        self,
        program: CProgram,
        config: Optional[QualConfig] = None,
        callees_of: Optional[Callable[[Call, str], list[str]]] = None,
        graph: Optional[QualGraph] = None,
    ) -> None:
        self.program = program
        self.config = config or QualConfig()
        self.graph = graph if graph is not None else QualGraph()
        self._slots: dict[SlotKey, QualType] = {}
        self._callees_of = callees_of
        self._malloc_counter = itertools.count(1)
        self._qvar_ids = itertools.count(1)
        self.constrained_functions: set[str] = set()

    # -- slots -------------------------------------------------------------------

    def fresh_qvar(self, hint: str) -> QVar:
        """A qualifier variable with this inference's next ordinal id."""
        return QVar(hint, next(self._qvar_ids))

    def fresh_qualtype(self, ctype: CType, hint: str) -> QualType:
        quals = tuple(
            self.fresh_qvar(f"{hint}*{i}" if i else hint)
            for i in range(pointer_depth(ctype))
        )
        return QualType(ctype, quals)

    def slot(self, key: SlotKey, ctype: CType, hint: str) -> QualType:
        existing = self._slots.get(key)
        if existing is None:
            existing = self.fresh_qualtype(ctype, hint)
            self._slots[key] = existing
        return existing

    def local_slot(self, fn: str, name: str, ctype: CType) -> QualType:
        return self.slot(("local", fn, name), ctype, f"{fn}.{name}")

    def global_slot(self, name: str, ctype: CType) -> QualType:
        return self.slot(("global", name), ctype, name)

    def return_slot(self, fn: CFunction) -> QualType:
        qt = self.slot(("ret", fn.name), fn.ret, f"{fn.name}()")
        if fn.nonnull_return and qt.top is not None:
            self.graph.add_flow(NONNULL, qt.top, f"nonnull return of {fn.name}")
        return qt

    def param_slot(self, fn: CFunction, index: int) -> QualType:
        param = fn.params[index]
        qt = self.slot(
            ("local", fn.name, param.name), param.typ, f"{fn.name}.{param.name}"
        )
        if param.nonnull and qt.top is not None:
            self.graph.add_flow(
                qt.top,
                NONNULL,
                f"nonnull parameter {param.name} of {fn.name}",
            )
        return qt

    def field_slot(self, struct: str, fname: str, ctype: CType) -> QualType:
        return self.slot(("field", struct, fname), ctype, f"{struct}.{fname}")

    # -- solving -----------------------------------------------------------------

    def solution(self, qt: QualType) -> Optional[QConst]:
        """The inferred top-level qualifier: NULL if a null value may flow
        here; otherwise the optimistic NONNULL (paper §4.1)."""
        if qt.top is None:
            return None
        return NULL if self.graph.may_null(qt.top) else NONNULL

    def warnings(self) -> list[QualWarning]:
        return self.graph.warnings()

    # -- constraint generation ------------------------------------------------------

    def constrain_function(self, name: str) -> None:
        """Generate constraints for one function body (idempotent)."""
        if name in self.constrained_functions:
            return
        self.constrained_functions.add(name)
        fn = self.program.functions[name]
        for i in range(len(fn.params)):
            self.param_slot(fn, i)
        self.return_slot(fn)
        if fn.body is None:
            return
        typeinfo = TypeInfo(self.program, self._local_types(fn))
        _FunctionConstrainer(self, fn, typeinfo).stmt(fn.body)

    def constrain_globals(self) -> None:
        """Constraints for global initializers."""
        for g in self.program.globals.values():
            if g.init is None:
                continue
            fn = CFunction("<global-init>", (), g.typ, None)
            typeinfo = TypeInfo(self.program, {})
            constrainer = _FunctionConstrainer(self, fn, typeinfo)
            init_qt = constrainer.expr(g.init)
            constrainer.flow(init_qt, self.global_slot(g.name, g.typ), f"initializer of {g.name}")

    def _local_types(self, fn: CFunction) -> dict[str, CType]:
        env = {p.name: p.typ for p in fn.params}
        if fn.body is not None:
            _collect_locals(fn.body, env)
        return env

    def callees(self, call: Call, fn: str) -> list[str]:
        if isinstance(call.fn, VarRef) and call.fn.name in self.program.functions:
            return [call.fn.name]
        if self._callees_of is not None:
            return self._callees_of(call, fn)
        return []


def _collect_locals(stmt: CStmt, env: dict[str, CType]) -> None:
    if isinstance(stmt, VarDecl):
        env[stmt.name] = stmt.typ
    elif isinstance(stmt, Block):
        for s in stmt.stmts:
            _collect_locals(s, env)
    elif isinstance(stmt, If):
        _collect_locals(stmt.then, env)
        if stmt.els is not None:
            _collect_locals(stmt.els, env)
    elif isinstance(stmt, While):
        _collect_locals(stmt.body, env)


class _FunctionConstrainer:
    """Walks one function body, generating constraints (flow-insensitive:
    statement order is irrelevant to the produced graph)."""

    def __init__(self, inference: QualInference, fn: CFunction, typeinfo: TypeInfo):
        self.inf = inference
        self.fn = fn
        self.types = typeinfo

    # -- plumbing ----------------------------------------------------------------

    def flow(self, src: QualType, dst: QualType, reason: str) -> None:
        """src flows into dst: top-level subtyping, deep unification."""
        if src.top is not None and dst.top is not None:
            self.inf.graph.add_flow(src.top, dst.top, reason)
        for s, d in zip(src.quals[1:], dst.quals[1:]):
            self.inf.graph.unify(s, d, f"{reason} (deep)")

    # -- statements --------------------------------------------------------------

    def stmt(self, node: CStmt) -> None:
        if isinstance(node, Block):
            for s in node.stmts:
                self.stmt(s)
        elif isinstance(node, VarDecl):
            slot = self.inf.local_slot(self.fn.name, node.name, node.typ)
            if node.init is not None:
                self.flow(
                    self.expr(node.init),
                    slot,
                    f"initialization of {node.name} in {self.fn.name}",
                )
        elif isinstance(node, ExprStmt):
            self.expr(node.expr)
        elif isinstance(node, If):
            self.expr(node.cond)  # condition qualifiers ignored: path-insensitive
            self.stmt(node.then)
            if node.els is not None:
                self.stmt(node.els)
        elif isinstance(node, While):
            self.expr(node.cond)
            self.stmt(node.body)
        elif isinstance(node, Return):
            if node.value is not None:
                self.flow(
                    self.expr(node.value),
                    self.inf.return_slot(self.fn),
                    f"return in {self.fn.name}",
                )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement {node!r}")

    # -- expressions -------------------------------------------------------------

    def expr(self, node: CExpr) -> QualType:
        if isinstance(node, IntLit):
            return QualType(self.types.type_of(node), ())
        if isinstance(node, StrLit):
            qt = self.inf.fresh_qualtype(self.types.type_of(node), "strlit")
            assert qt.top is not None
            self.inf.graph.add_flow(NONNULL, qt.top, "string literal")
            return qt
        if isinstance(node, NullLit):
            qt = self.inf.fresh_qualtype(PtrType(self.types.type_of(node).elem), "null")  # type: ignore[union-attr]
            assert qt.top is not None
            self.inf.graph.add_flow(NULL, qt.top, f"NULL literal in {self.fn.name}")
            return qt
        if isinstance(node, VarRef):
            return self._var_slot(node.name)
        if isinstance(node, Deref):
            inner = self.expr(node.ptr)
            self._check_deref(inner, f"*{_describe(node.ptr)} in {self.fn.name}")
            return inner.deref()
        if isinstance(node, AddrOf):
            target = self.expr(node.target)
            qt = QualType(
                PtrType(target.ctype),
                (self.inf.fresh_qvar(f"&{_describe(node.target)}"),) + target.quals,
            )
            assert qt.top is not None
            self.inf.graph.add_flow(NONNULL, qt.top, "address-of")
            return qt
        if isinstance(node, Field):
            obj = self.expr(node.obj)
            struct_type = obj.ctype
            if node.arrow:
                self._check_deref(obj, f"{_describe(node.obj)}->{node.name} in {self.fn.name}")
                struct_type = obj.deref().ctype
            struct = self.inf.program.struct_def(struct_type)
            return self.inf.field_slot(
                struct.name, node.name, struct.field_type(node.name)
            )
        if isinstance(node, Unary):
            self.expr(node.operand)
            return QualType(self.types.type_of(node), ())
        if isinstance(node, Binary):
            left = self.expr(node.left)
            self.expr(node.right)
            if isinstance(left.ctype, PtrType) and node.op in ("+", "-"):
                return left  # pointer arithmetic preserves the qualifier
            return QualType(self.types.type_of(node), ())
        if isinstance(node, Assign):
            rhs = self.expr(node.rhs)
            lhs = self.expr(node.lhs)
            self.flow(rhs, lhs, f"assignment to {_describe(node.lhs)} in {self.fn.name}")
            return lhs
        if isinstance(node, Call):
            return self._call(node)
        if isinstance(node, Malloc):
            site = next(self.inf._malloc_counter)
            qt = self.inf.slot(
                ("malloc", site), PtrType(node.typ), f"malloc#{site}"
            )
            assert qt.top is not None
            self.inf.graph.add_flow(NONNULL, qt.top, "malloc result")
            return qt
        if isinstance(node, Cast):
            inner = self.expr(node.operand)
            depth = pointer_depth(node.typ)
            if depth == len(inner.quals):
                return QualType(node.typ, inner.quals)
            return self.inf.fresh_qualtype(node.typ, "cast")
        if isinstance(node, Symbolic):
            return QualType(self.types.type_of(node), ())
        if isinstance(node, (Assume, Check)):
            self.expr(node.cond)
            return QualType(self.types.type_of(node), ())
        raise CTypeError(f"cannot constrain expression {node!r}")

    def _var_slot(self, name: str) -> QualType:
        if name in self.types.locals:
            return self.inf.local_slot(self.fn.name, name, self.types.locals[name])
        if name in self.inf.program.globals:
            return self.inf.global_slot(name, self.inf.program.globals[name].typ)
        if name in self.inf.program.functions:
            # A function name used as a value: a non-null function pointer.
            fn = self.inf.program.functions[name]
            ftype = PtrType(FunType(tuple(p.typ for p in fn.params), fn.ret))
            qt = self.inf.slot(("fnaddr", name), ftype, f"&{name}")
            assert qt.top is not None
            self.inf.graph.add_flow(NONNULL, qt.top, f"function address {name}")
            return qt
        raise CTypeError(f"unknown identifier {name}")

    def _check_deref(self, qt: QualType, description: str) -> None:
        if self.inf.config.deref_requires_nonnull and qt.top is not None:
            self.inf.graph.add_flow(qt.top, NONNULL, f"dereference {description}")

    def _call(self, node: Call) -> QualType:
        arg_qts = [self.expr(a) for a in node.args]
        if not isinstance(node.fn, VarRef):
            self.expr(node.fn)
        targets = self.inf.callees(node, self.fn.name)
        result: Optional[QualType] = None
        for target in targets:
            callee = self.inf.program.functions[target]
            for i, arg_qt in enumerate(arg_qts):
                if i >= len(callee.params):
                    break
                self.flow(
                    arg_qt,
                    self.inf.param_slot(callee, i),
                    f"argument {i + 1} of call to {target} in {self.fn.name}",
                )
            ret = self.inf.return_slot(callee)
            if result is None:
                result = ret
            else:
                # Conflate multiple possible callees' returns.
                merged = self.inf.fresh_qualtype(ret.ctype, f"call-{target}")
                self.flow(ret, merged, f"return of {target}")
                self.flow(result, merged, "merged call targets")
                result = merged
        if result is None:
            try:
                ret_type = self.types.callee_type(node).ret
            except CTypeError:
                ret_type = self.types.type_of(node)
            result = self.inf.fresh_qualtype(ret_type, "extern-call")
        return result


def _describe(expr: CExpr) -> str:
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, Deref):
        return f"*{_describe(expr.ptr)}"
    if isinstance(expr, Field):
        sep = "->" if expr.arrow else "."
        return f"{_describe(expr.obj)}{sep}{expr.name}"
    if isinstance(expr, AddrOf):
        return f"&{_describe(expr.target)}"
    return type(expr).__name__.lower()
