"""The MIXY driver: switching between qualifier inference and symbolic
execution at function boundaries (paper Sections 4.1-4.4).

In **typed entry** mode (how the paper's evaluation ran), qualifier
inference starts at the entry function and covers every function
reachable in the call graph "up to the frontier of any functions that are
marked with MIX(symbolic)"; each frontier function is then analyzed
symbolically:

- *types -> symbolic values* (§4.1): a parameter or global whose inferred
  qualifier is ``nonnull`` becomes a pointer to a fresh memory cell; one
  that may be ``null`` becomes ``ite(α, loc, 0)`` so the executor tries
  both; an unconstrained qualifier variable is optimistically assumed
  ``nonnull`` — which is what forces the **fixpoint iteration**: later
  discoveries re-run the symbolic block until nothing changes.
- *symbolic values -> types* (§4.1): for each translated cell with final
  value ``s``, if ``g ∧ (s = 0)`` is satisfiable the corresponding slot
  is constrained ``null``; "there are no nonnull constraints to be
  added".
- *aliasing* (§4.2): when returning to typed code, may-aliased
  expressions (per the Andersen analysis) are unified so the inference
  sees the aliasing the symbolic block exploited.
- *caching* (§4.3): symbolic block results are cached keyed on the
  calling context — "the types for all variables that will be translated
  into symbolic values"; compatible contexts reuse the translated types.
- *recursion* (§4.4): a block stack detects a block re-entered with a
  compatible context; the recursive entry returns the optimistic
  assumption and the whole analysis iterates to a fixpoint.

In **symbolic entry** mode the executor starts at the entry function
(globals zero-initialized, C-style); calls to ``MIX(typed)`` or extern
functions switch to the qualifier engine through the executor's call
hook and resume with a havocked return value and memory.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional, Union

from repro import smt
from repro.budget import Budget
from repro.core.config import _env_flag, _env_int, _env_str
from repro.mixy.c.ast import (
    Call,
    CFunction,
    CProgram,
    CType,
    FunType,
    PtrType,
    Scalar,
    StructType,
    VOID_T,
)
from repro.mixy.c.parser import parse_program
from repro.mixy.c.typeinfo import CTypeError
from repro.mixy.pointers import PointsTo, obj_global, obj_local
from repro.mixy.qual import (
    NONNULL,
    NULL,
    QConst,
    QualConfig,
    QualInference,
    QualType,
    QualWarning,
    QVar,
)
from repro.mixy.symexec import (
    CErrKind,
    CObj,
    CState,
    CSymConfig,
    CSymExecutor,
    CWarning,
    PathResult,
)
from repro.smt.simplify import simplify
from repro.trace import TRACER

if TYPE_CHECKING:
    from repro.witness import Witness


@dataclass(frozen=True)
class Warning_:
    """A MIXY warning, from either engine."""

    origin: str  # "qual" | "symbolic"
    message: str
    #: trust ring 1: replay classification (CONFIRMED / UNCONFIRMED /
    #: REPLAY_DIVERGED); None unless MixyConfig.validate_witnesses is on.
    witness: Optional["Witness"] = None

    def __str__(self) -> str:
        rendered = f"[{self.origin}] {self.message}"
        if self.witness is not None:
            rendered += f" [witness: {self.witness}]"
        return rendered


@dataclass
class MixyConfig:
    qual: QualConfig = field(default_factory=QualConfig)
    csym: CSymConfig = field(default_factory=CSymConfig)
    #: cache symbolic-block results per calling context (§4.3)
    enable_cache: bool = True
    #: restore may-alias relationships when entering typed code (§4.2)
    restore_aliasing: bool = True
    #: havoc memory reachable from a typed call's arguments and globals
    #: (False approximates the paper's proposed effect-based refinement)
    havoc_on_typed_call: bool = True
    #: fixpoint iteration cap (§4.1)
    max_fixpoint_iters: int = 8
    #: resource governor for the run; ``None`` means ungoverned.  On a
    #: breach inside a symbolic block the driver keeps the (sound) partial
    #: null facts and falls back to pure qualifier inference for the
    #: function, so the analysis always terminates with a conservative
    #: answer (see docs/ARCHITECTURE.md §1.2).
    budget: Optional[Budget] = None
    #: trust ring 1: replay each NULL_DEREF warning's error path through
    #: the concrete mini-C interpreter and attach a CONFIRMED /
    #: UNCONFIRMED / REPLAY_DIVERGED verdict (docs/ARCHITECTURE.md §1.3).
    #: Defaults from the REPRO_VALIDATE_WITNESSES environment variable.
    validate_witnesses: bool = field(
        default_factory=lambda: _env_flag("REPRO_VALIDATE_WITNESSES")
    )
    #: trust ring 3: catch unexpected exceptions during a symbolic
    #: block's analysis, degrade the function to pure qualifier inference
    #: (the budget-breach fallback), and write a shrunken crash repro
    #: instead of taking the whole run down.
    contain_crashes: bool = True
    #: where contained crashes write their minimized repro reports
    crash_dir: str = ".repro-crashes"
    #: worker processes for the parallel engine (``--jobs``; see
    #: repro.parallel): each fixpoint round's symbolic frontier is
    #: speculatively fanned out and the warmed query cache merged back
    #: before the authoritative serial pass.  1 = the serial path, byte
    #: for byte.  Defaults from the REPRO_JOBS environment variable.
    jobs: int = field(default_factory=lambda: _env_int("REPRO_JOBS", 1))
    #: speculative-dispatch policy under ``--jobs N`` (``--schedule``;
    #: see repro.schedule): "fifo" = one task per frontier block,
    #: "waves" batches similar blocks and skips converged ones,
    #: "portfolio" additionally races solver strategies on hot blocks.
    #: Strategies run in workers only, so output stays identical to
    #: ``--jobs 1`` in every mode.
    schedule: str = field(default_factory=lambda: _env_str("REPRO_SCHEDULE", "fifo"))
    #: path to a ``.repro-sched.json`` hint file (``--sched-hints``)
    #: emitted by ``trace-report --emit-hints``; None = unhinted.
    sched_hints: Optional[str] = field(
        default_factory=lambda: os.environ.get("REPRO_SCHED_HINTS") or None
    )
    #: cross-run analysis store (``--store DIR``; see repro.store): an
    #: opened :class:`repro.store.AnalysisStore`, or None.  Block-result
    #: memos are consulted/recorded only on the serial path with no
    #: budget, witness validation, or fault injection — exactly the
    #: conditions under which a skipped block's observable effects can
    #: be replayed bit for bit (see _analyze_symbolic_inner).
    store: Optional[object] = None


@dataclass
class _CacheEntry:
    null_slots: list[QVar]
    warnings: list[CWarning]


@dataclass
class _BlockExecution:
    """One symbolic block execution's results plus the bookkeeping the
    cross-run store needs to replay it: null conclusions as indices into
    the (deterministic) watched list, and how many fresh symbols /
    addresses execution consumed (a store hit fast-forwards past them so
    later blocks' names match a cold run's exactly)."""

    null_slots: list[QVar]
    warnings: list[CWarning]
    null_indices: tuple[int, ...]
    symbols_consumed: int
    addresses_consumed: int
    typed_calls_delta: int


@dataclass
class _ReplayContext:
    """Everything needed to replay a block's error path concretely:
    the entry function, its symbolic argument values, the materialized
    entry state, and baselines of the abstraction counters (typed-call
    havoc, lazy objects, truncation warnings) so a warning can tell
    whether its block run was exact."""

    fn: CFunction
    args: list[smt.Term]
    state: CState
    global_env: dict[str, int]
    typed_calls: int
    lazy_objects: int
    warnings_len: int


#: Warning kinds whose presence means the block run abstracted something
#: the concrete replay executes for real — never classify DIVERGED then.
_INEXACT_KINDS = (CErrKind.RECURSION, CErrKind.UNSUPPORTED, CErrKind.BUDGET)


def _engine_available() -> bool:
    """Whether fork fan-out is possible here (see repro.parallel)."""
    from repro.parallel import ParallelEngine

    return ParallelEngine.available()


class Mixy:
    """The MIXY analysis over one mini-C program."""

    def __init__(
        self, program: Union[CProgram, str], config: Optional[MixyConfig] = None
    ) -> None:
        if isinstance(program, str):
            program = parse_program(program)
        self.program = program
        self.config = config or MixyConfig()
        self.points_to = PointsTo(program)
        self.qual = QualInference(
            program, self.config.qual, callees_of=self.points_to.callees
        )
        self.executor = CSymExecutor(
            program,
            self.config.csym,
            call_hook=self._typed_call_hook,
            budget=self.config.budget,
        )
        if self.config.validate_witnesses:
            self.executor.witness_checker = self._check_witness
        self._replay_context: Optional[_ReplayContext] = None
        self._entry: tuple[str, str] = ("typed", "main")
        self._cache: dict[tuple, _CacheEntry] = {}
        self._block_stack: list[tuple] = []
        #: entry -> (qualifier-graph edge count, (typed, frontier)); the
        #: call-graph walk is invalidated only when the graph gained edges
        self._partition_cache: dict[str, tuple[int, tuple[frozenset[str], frozenset[str]]]] = {}
        from repro.schedule import make_scheduler

        self._scheduler = make_scheduler(self.config)
        if self.config.jobs > 1 and _engine_available():
            from repro.parallel import ParallelEngine

            self._parallel: Optional[ParallelEngine] = ParallelEngine(
                self.config.jobs, scheduler=self._scheduler
            )
        else:
            # Serial, or built where fork fan-out is impossible (inside
            # a pool worker, on fork-less platforms): must take the
            # serial path byte for byte — parallel mode also switches to
            # block-deterministic symbol naming.
            self._parallel = None
        #: Memoized per-block content hashes / wave features (scheduling).
        self._block_hashes: dict[str, str] = {}
        self._block_features: dict[str, frozenset] = {}
        self._cell_slots: dict[int, QVar] = {}  # provenance: cell -> qual var
        self.stats = {
            "fixpoint_iterations": 0,
            "symbolic_blocks_run": 0,
            "cache_hits": 0,
            "recursion_detected": 0,
            "typed_calls": 0,
            "budget_fallbacks": 0,
            "analysis_seconds": 0.0,
            # per-run deltas of the shared solver service (see run())
            "solver_queries": 0,
            "solver_cache_hits": 0,
            "solver_full_solves": 0,
        }

    @property
    def solver_stats(self) -> "smt.SolverStats":
        """Counters of the shared solver service (queries, cache tiers)."""
        return smt.get_service().stats

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run(self, entry: str = "typed", entry_function: str = "main") -> list[Warning_]:
        """Analyze the program; returns all warnings."""
        started = time.perf_counter()
        if entry_function not in self.program.functions:
            raise KeyError(entry_function)
        svc = self.solver_stats
        queries0, hits0, solves0 = svc.queries, svc.cache_hits, svc.full_solves
        budget = self.config.budget
        if budget is not None:
            budget.start()  # idempotent: the run clock arms here
        self._entry = (entry, entry_function)  # crash probes re-run this
        with smt.get_service().governed(budget), TRACER.span(
            "run", f"mixy:{entry}:{entry_function}"
        ):
            if entry == "typed":
                self._run_typed(entry_function)
            elif entry == "symbolic":
                self._run_symbolic(entry_function)
            else:
                raise ValueError(
                    f"entry must be 'typed' or 'symbolic', got {entry!r}"
                )
        self.stats["analysis_seconds"] = time.perf_counter() - started
        self.stats["solver_queries"] += svc.queries - queries0
        self.stats["solver_cache_hits"] += svc.cache_hits - hits0
        self.stats["solver_full_solves"] += svc.full_solves - solves0
        return self.warnings()

    def warnings(self) -> list[Warning_]:
        out = [Warning_("qual", str(w)) for w in self.qual.warnings()]
        out.extend(
            Warning_(
                "symbolic", str(w), witness=self.executor.witnesses.get(w.key)
            )
            for w in self.executor.warnings
            if w.kind is not CErrKind.LOOP_BOUND
        )
        return out

    # ------------------------------------------------------------------
    # Typed entry: qualifier inference up to the symbolic frontier
    # ------------------------------------------------------------------

    def _run_typed(self, entry_function: str) -> None:
        self.qual.constrain_globals()
        for iteration in range(self.config.max_fixpoint_iters):
            self.stats["fixpoint_iterations"] += 1
            with TRACER.span("mixy.round", f"round{iteration + 1}") as round_span:
                edges_before = self.qual.graph.num_edges
                warnings_before = len(self.executor.warnings)
                typed, frontier = self._reachable_partition(entry_function)
                for name in sorted(typed):
                    self.qual.constrain_function(name)
                ordered = sorted(frontier)
                if round_span is not None:
                    round_span.fields["frontier"] = len(ordered)
                    round_span.fields["typed"] = len(typed)
                if self._parallel is not None:
                    # Speculative fan-out: workers fork off the current
                    # state, analyze the round's blocks, and send back query
                    # -cache deltas (merged in block-name order).  The serial
                    # loop below then recomputes everything authoritatively
                    # against the warmed cache, so its results are identical
                    # to --jobs 1 by construction (see repro.parallel).
                    self._parallel.warm_mixy_round(self, ordered)
                for name in ordered:
                    self._analyze_symbolic_function(name)
                unchanged = (
                    self.qual.graph.num_edges == edges_before
                    and len(self.executor.warnings) == warnings_before
                )
            if unchanged and iteration > 0:
                break

    def _reachable_partition(self, entry_function: str) -> tuple[set[str], set[str]]:
        """Functions reachable from the entry, split into (typed region,
        symbolic frontier).  Cached across fixpoint iterations: the walk
        depends on the call graph (via the points-to sets) and on nothing
        the iterations mutate except the qualifier graph, so a cached
        partition is reused until the graph has gained edges."""
        edges = self.qual.graph.num_edges
        cached = self._partition_cache.get(entry_function)
        if cached is not None and cached[0] == edges:
            typed, frontier = cached[1]
            return set(typed), set(frontier)
        typed, frontier = self._walk_reachable(entry_function)
        self._partition_cache[entry_function] = (
            edges,
            (frozenset(typed), frozenset(frontier)),
        )
        return typed, frontier

    def _walk_reachable(self, entry_function: str) -> tuple[set[str], set[str]]:
        typed: set[str] = set()
        frontier: set[str] = set()
        stack = [entry_function]
        while stack:
            name = stack.pop()
            fn = self.program.functions.get(name)
            if fn is None:
                continue
            if fn.mix == "symbolic":
                frontier.add(name)
                continue
            if name in typed:
                continue
            typed.add(name)
            if fn.body is not None:
                stack.extend(self._called_functions(fn))
        return typed, frontier

    def _called_functions(self, fn: CFunction) -> list[str]:
        out: list[str] = []
        for call, _ in _find_calls(fn):
            out.extend(self.points_to.callees(call, fn.name))
        return out

    # -- scheduling inputs (see repro.schedule) -------------------------

    def block_content_hash(self, name: str) -> str:
        """Memoized content hash of one frontier block (hint-file key)."""
        chash = self._block_hashes.get(name)
        if chash is None:
            from repro.schedule import block_content_hash

            chash = self._block_hashes[name] = block_content_hash(
                self.program, name
            )
        return chash

    def sched_features(self, name: str) -> frozenset:
        """Wave-similarity features of one frontier block: the globals
        its text references plus the functions it calls — blocks sharing
        state or callees tend to generate overlapping conjuncts, so
        batching them in one worker amortizes the warmed cache."""
        feats = self._block_features.get(name)
        if feats is None:
            from repro.mixy.c.pretty import function_text

            fn = self.program.functions[name]
            text = function_text(fn)
            names = {f"g:{g}" for g in self.program.globals if g in text}
            names.update(f"c:{c}" for c in self._called_functions(fn))
            feats = self._block_features[name] = frozenset(names)
        return feats

    # ------------------------------------------------------------------
    # Symbolic blocks from typed context (rule TSymBlock's MIXY analog)
    # ------------------------------------------------------------------

    def _analyze_symbolic_function(self, name: str) -> None:
        if not TRACER.enabled:
            return self._analyze_symbolic_inner(name, None)
        with TRACER.span("mixy.block", name) as span:
            return self._analyze_symbolic_inner(name, span)

    def _analyze_symbolic_inner(self, name: str, span) -> None:
        fn = self.program.functions[name]
        if fn.body is None:
            return
        if span is not None:
            # Stamp the block's content hash on its span: trace-report
            # keys scheduling hints on it, and hint files are typically
            # emitted from a plain (fifo, even serial) traced run.
            span.fields["chash"] = self.block_content_hash(name)
        if self._scheduler is not None:
            # Install the block's learned cache-tier probe order.  The
            # subset/superset swap is verdict- and cache-state-identical
            # (see SolverService.tier_order), so this is safe in the
            # authoritative pass as well as in workers.
            smt.get_service().tier_order = self._scheduler.tier_order_for(
                self.block_content_hash(name)
            )
        if self._parallel is not None and not self._block_stack:
            # Parallel mode: block-deterministic naming.  Restarting the
            # fresh-symbol and address counters at each top-level block
            # entry makes a block's terms a function of (program, calling
            # context) alone, so speculative worker verdicts — and earlier
            # fixpoint rounds' verdicts — hit the cache here.  Never done
            # at --jobs 1, which must take the serial path byte for byte.
            self.executor.reset_block_counters()
        context_key, context_slots = self._calling_context(fn)
        stack_key = (name, context_key)
        if stack_key in self._block_stack:
            # §4.4: recursion — return the optimistic assumption; the outer
            # fixpoint iterates until assumption and result agree.
            self.stats["recursion_detected"] += 1
            if span is not None:
                span.fields["recursion"] = True
            return
        if self.config.enable_cache:
            cached = self._cache.get(stack_key)
            if cached is not None:
                self.stats["cache_hits"] += 1
                if span is not None:
                    span.fields["cached"] = True
                self._apply_conclusions(cached.null_slots, name)
                return
        memo_key: Optional[str] = None
        if self._store_active():
            memo_key = self._store_key(fn, context_key)
            entry = self.config.store.mixy_get(memo_key)
            if entry is not None:
                # Cross-run store hit: replay the block's observable
                # effects — materialization, name consumption, warnings,
                # null conclusions — without re-executing it.
                if span is not None:
                    span.fields["store_hit"] = True
                self._replay_block_entry(fn, context_slots, entry, name, stack_key)
                return
        self._block_stack.append(stack_key)
        breaches_before = self.executor.stats["budget_breaches"]
        try:
            execution = self._execute_symbolic_block(fn, context_slots)
            null_slots, warnings = execution.null_slots, execution.warnings
        except CTypeError:
            raise  # a frontend/program error, not an analysis crash
        except Exception as error:
            if not self.config.contain_crashes:
                raise
            self._contain_block_crash(error, fn)
            return
        finally:
            self._block_stack.pop()
        self._apply_conclusions(null_slots, name)
        if self.executor.stats["budget_breaches"] > breaches_before:
            # The governor cut this block short.  The null facts gathered so
            # far are sound (each came from a feasible path) and were
            # applied above, but coverage may be incomplete, so degrade:
            # analyze the function with pure qualifier inference as well —
            # the flow-insensitive over-approximation MIXY would have used
            # had the function not been marked symbolic — and do not cache
            # the truncated result (a later, better-funded run may redo it).
            self.stats["budget_fallbacks"] += 1
            if span is not None:
                span.fields["budget_fallback"] = True
            self.qual.constrain_function(name)
            return
        if self.config.enable_cache:
            self._cache[stack_key] = _CacheEntry(null_slots, warnings)
        if memo_key is not None and execution.typed_calls_delta == 0:
            # Record for future runs.  Only *pure* blocks — no typed
            # calls executed — are memoizable: a typed call's qualifier
            # constraints and nested analyses are side effects a skip
            # could not replay.  Warnings ship as plain strings; null
            # conclusions as indices into the deterministic watched
            # list, never as QVar objects (their identity is per-run).
            self.config.store.mixy_put(
                memo_key,
                {
                    "null_indices": execution.null_indices,
                    "warnings": tuple(
                        (w.kind.value, w.message, w.function)
                        for w in execution.warnings
                    ),
                    "symbols": execution.symbols_consumed,
                    "addresses": execution.addresses_consumed,
                },
            )
        if self.config.restore_aliasing:
            self._restore_aliasing(fn)

    # -- cross-run block memos (see repro.store) ------------------------

    def _store_active(self) -> bool:
        """Memoization is on only when a skip is provably transparent:
        serial naming (no parallel reset), no budget (a skip consumes no
        paths, so breach behavior would differ), no witness validation
        (replay needs the real execution), no fault injection (the
        fault schedule indexes live queries)."""
        return (
            self.config.store is not None
            and self._parallel is None
            and self.config.budget is None
            and not self.config.validate_witnesses
            and smt.get_service().fault_injector is None
        )

    def _store_key(self, fn: CFunction, context_key: tuple) -> str:
        """The block's cross-run identity: its content hash widened with
        its transitive callee cone, struct layouts, the typed calling
        context, and the analysis configuration.  Editing one function
        retires exactly the keys whose cone contains it."""
        from repro.mixy.c.pretty import function_text, struct_text
        from repro.schedule import block_content_hash

        cone = []
        for cname in sorted(self._callee_cone(fn.name) - {fn.name}):
            cfn = self.program.functions.get(cname)
            if cfn is not None and cfn.body is not None:
                cone.append(function_text(cfn))
            else:
                cone.append(f"extern {cname}")
        structs = [
            struct_text(s) for _, s in sorted(self.program.structs.items())
        ]
        config_fp = repr(
            (
                self.config.qual,
                self.config.csym,
                self.config.enable_cache,
                self.config.restore_aliasing,
                self.config.havoc_on_typed_call,
            )
        )
        return block_content_hash(
            self.program,
            fn.name,
            context=(tuple(cone), tuple(structs), context_key, config_fp),
        )

    def _callee_cone(self, name: str) -> set[str]:
        """``name`` plus every function transitively callable from it
        (by text, not by what actually executed — an over-approximation
        is a safe invalidation key)."""
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            fn = self.program.functions.get(current)
            if fn is not None and fn.body is not None:
                stack.extend(self._called_functions(fn))
        return seen

    def _replay_block_entry(
        self,
        fn: CFunction,
        context_slots: list[tuple[str, QualType]],
        entry: dict,
        name: str,
        stack_key: tuple,
    ) -> None:
        """Apply a stored block result as if the block had just run: the
        context is materialized for real (same fresh names as a cold
        run), execution's name consumption is fast-forwarded, warnings
        are re-raised through the deduplicating path, and the stored
        watched-slot indices become this run's QVar conclusions."""
        state = self.executor.initial_state()
        watched: list[tuple[int, QVar]] = []
        saved_global_env = self.executor.global_env
        self.executor.global_env = {}
        try:
            self._materialize_context(fn, context_slots, state, watched)
        finally:
            self.executor.global_env = saved_global_env
        self.executor.fast_forward(entry["symbols"], entry["addresses"])
        warnings = []
        for kind_value, message, function in entry["warnings"]:
            self.executor.warn(CErrKind(kind_value), message, function)
            warnings.append(CWarning(CErrKind(kind_value), message, function))
        null_slots = [watched[i][1] for i in entry["null_indices"]]
        self._apply_conclusions(null_slots, name)
        if self.config.enable_cache:
            self._cache[stack_key] = _CacheEntry(null_slots, warnings)
        if self.config.restore_aliasing:
            self._restore_aliasing(fn)

    def _calling_context(self, fn: CFunction):
        """§4.3: the calling context is the (solved) types of everything
        translated into symbolic values: parameters and globals."""
        slots: list[tuple[str, QualType]] = []
        for i, param in enumerate(fn.params):
            slots.append((f"param:{param.name}", self.qual.param_slot(fn, i)))
        for gname, g in sorted(self.program.globals.items()):
            slots.append((f"global:{gname}", self.qual.global_slot(gname, g.typ)))
        key = tuple(
            (label, self._context_type(qt)) for label, qt in slots
        )
        return key, slots

    def _context_type(self, qt: QualType) -> tuple:
        return (str(qt.ctype),) + tuple(
            "null" if self.qual.graph.may_null(q) else "nonnull" for q in qt.quals
        )

    def _materialize_context(
        self,
        fn: CFunction,
        context_slots: list[tuple[str, QualType]],
        state: CState,
        watched: list[tuple[int, QVar]],
    ) -> tuple[CState, list[smt.Term]]:
        """§4.1 types -> symbolic values for a whole calling context:
        globals first (shared addresses, installed in ``global_env``),
        then parameters.  Fully deterministic given (program, context),
        which is what lets a store hit rebuild the same ``watched`` list
        a cold run saw.  The caller owns the global_env save/restore."""
        for label, qt in context_slots:
            if not label.startswith("global:"):
                continue
            gname = label.split(":", 1)[1]
            state, cell = self._materialize_slot(state, qt, gname, watched)
            self.executor.global_env[gname] = cell
        args: list[smt.Term] = []
        for label, qt in context_slots:
            if not label.startswith("param:"):
                continue
            pname = label.split(":", 1)[1]
            state, value = self._translate_in(state, qt, f"{fn.name}.{pname}", watched)
            args.append(value)
        return state, args

    def _execute_symbolic_block(
        self, fn: CFunction, context_slots: list[tuple[str, QualType]]
    ) -> "_BlockExecution":
        """Translate types to symbolic values, run, translate back."""
        self.stats["symbolic_blocks_run"] += 1
        state = self.executor.initial_state()
        watched: list[tuple[int, QVar]] = []  # (cell, slot) to read back
        # Globals first (shared addresses for this block run).  The global
        # environment is saved and restored so that a nested symbolic block
        # (reached through a typed call made *during* another symbolic
        # execution) does not clobber the outer block's globals.
        saved_global_env = self.executor.global_env
        self.executor.global_env = {}
        state, args = self._materialize_context(fn, context_slots, state, watched)
        warnings_before = len(self.executor.warnings)
        typed_calls_before = self.stats["typed_calls"]
        alpha_mark, address_mark = self.executor.counter_marks()
        saved_context = self._replay_context
        if self.config.validate_witnesses:
            self._replay_context = _ReplayContext(
                fn,
                list(args),
                state,
                dict(self.executor.global_env),
                self.stats["typed_calls"],
                self.executor.stats["lazy_objects"],
                warnings_before,
            )
        try:
            results = list(self.executor.execute_function(fn, args, state))
        finally:
            self.executor.global_env = saved_global_env
            self._replay_context = saved_context
        alpha_after, address_after = self.executor.counter_marks()
        new_warnings = self.executor.warnings[warnings_before:]
        # §4.1 symbolic values -> types: a watched cell whose final value
        # may be 0 on some feasible path constrains its slot to null.
        # Cells last written by a typed call's havoc are skipped: the
        # typed callee's own qualifier constraints already describe that
        # write, and the havoc placeholder carries no information.
        null_slots: list[QVar] = []
        null_indices: list[int] = []
        for result in results:
            for index, (cell, slot) in enumerate(watched):
                final = result.state.cells.get(cell)
                if final is None or _is_havoc(final):
                    continue
                if self._may_be_null(result.state, final):
                    null_slots.append(slot)
                    null_indices.append(index)
        return _BlockExecution(
            null_slots=null_slots,
            warnings=new_warnings,
            null_indices=tuple(null_indices),
            symbols_consumed=alpha_after - alpha_mark,
            addresses_consumed=address_after - address_mark,
            typed_calls_delta=self.stats["typed_calls"] - typed_calls_before,
        )

    def _materialize_slot(
        self, state: CState, qt: QualType, label: str, watched: list[tuple[int, QVar]]
    ) -> tuple[CState, int]:
        """Allocate the cell behind a global/param slot and fill it."""
        state, value = self._translate_in(state, qt, label, watched)
        state, obj = self.executor.allocate_object(state, qt.ctype, label)
        state = state.write(obj.base, value)
        if qt.quals:
            # The global's own cell is observable from typed code: watch it
            # so e.g. `g = NULL;` inside the block constrains g's qualifier.
            watched.append((obj.base, qt.quals[0]))
            self._cell_slots[obj.base] = qt.quals[0]
        return state, obj.base

    def _translate_in(
        self,
        state: CState,
        qt: QualType,
        label: str,
        watched: list[tuple[int, QVar]],
    ) -> tuple[CState, smt.Term]:
        """§4.1 types -> symbolic values for one qualified type."""
        ctype = qt.ctype
        if isinstance(ctype, PtrType) and not isinstance(ctype.elem, FunType):
            assert qt.top is not None
            solution = self.qual.solution(qt)
            # One level of the pointed-to structure is materialized; the
            # pointee cell(s) are *watched* so their final values can be
            # read back when returning to the typed world.
            if isinstance(ctype.elem, StructType):
                state, obj = self._materialize_struct(
                    state, ctype.elem, f"*{label}", watched
                )
            else:
                inner = qt.deref()
                if inner.quals:
                    state, inner_value = self._translate_in(
                        state, inner, f"*{label}", watched
                    )
                else:
                    inner_value = self.executor.fresh_symbol(f"{label}_val")
                state, obj = self.executor.allocate_object(
                    state, ctype.elem, f"*{label}"
                )
                state = state.write(obj.base, inner_value)
                if inner.quals:
                    watched.append((obj.base, inner.quals[0]))
                    self._cell_slots[obj.base] = inner.quals[0]
            address = smt.int_const(obj.base)
            if solution is NONNULL:
                # Optimistic (or proven) nonnull: points at the fresh cell.
                return state, address
            # May be null: ite(α, loc, 0) — "the symbolic executor will
            # try both possibilities".
            choice = self.executor.fresh_symbol(f"{label}_isnull")
            value = smt.ite(
                smt.eq(choice, smt.int_const(0)), smt.int_const(0), address
            )
            return state, simplify(value)
        if isinstance(ctype, StructType):
            return state, self.executor.fresh_symbol(label)
        # Scalars, void, function pointers: an unconstrained symbol.  A
        # symbolic function pointer stays opaque — calling it is the
        # unsupported operation of Case 4.
        return state, self.executor.fresh_symbol(label)

    def _materialize_struct(
        self,
        state: CState,
        struct_type,
        label: str,
        watched: list[tuple[int, QVar]],
    ):
        """Materialize one struct level: scalar fields become fresh
        symbols; pointer fields get values matching their (monomorphic)
        field qualifier solutions, with deeper structure left to lazy
        initialization — "MIXY only initializes as much as is required by
        the symbolic block" (§4.2), which also sidesteps recursive types.
        """
        struct = self.program.struct_def(struct_type)
        state, obj = self.executor.allocate_object(state, struct_type, label)
        for i, (fname, ftype) in enumerate(struct.fields):
            cell = obj.base + i
            value = self.executor.fresh_symbol(f"{label}.{fname}")
            if isinstance(ftype, PtrType) and not isinstance(ftype.elem, FunType):
                fq = self.qual.field_slot(struct.name, fname, ftype)
                if self.qual.solution(fq) is NONNULL:
                    # Optimistic/proven nonnull: constrain the symbol away
                    # from 0; the target object is materialized lazily.
                    state = state.add_defs(
                        smt.not_(smt.eq(value, smt.int_const(0)))
                    )
                if fq.quals:
                    watched.append((cell, fq.quals[0]))
                    self._cell_slots[cell] = fq.quals[0]
            state = state.write(cell, value)
        return state, obj

    def _may_be_null(self, state: CState, value: smt.Term) -> bool:
        self.executor.stats["solver_calls"] += 1
        try:
            return smt.is_satisfiable(
                smt.and_(state.condition(), smt.eq(value, smt.int_const(0)))
            )
        except smt.SolverError:
            return True

    def _apply_conclusions(self, null_slots: list[QVar], block: str) -> None:
        for slot in null_slots:
            self.qual.graph.add_flow(
                NULL, slot, f"result of symbolic block {block}"
            )

    def _restore_aliasing(self, fn: CFunction) -> None:
        """§4.2: unify qualifiers of may-aliased parameter/global targets."""
        nodes: list[tuple[QualType, set]] = []
        for i, param in enumerate(fn.params):
            if isinstance(param.typ, PtrType):
                qt = self.qual.param_slot(fn, i)
                pts = self.points_to.pts(obj_local(fn.name, param.name))
                nodes.append((qt, pts))
        for gname, g in self.program.globals.items():
            if isinstance(g.typ, PtrType):
                qt = self.qual.global_slot(gname, g.typ)
                pts = self.points_to.pts(obj_global(gname))
                nodes.append((qt, pts))
        for (qt1, pts1), (qt2, pts2) in itertools.combinations(nodes, 2):
            if pts1 & pts2 and len(qt1.quals) > 1 and len(qt2.quals) > 1:
                self.qual.graph.unify(
                    qt1.quals[1],
                    qt2.quals[1],
                    f"may-alias restore after {fn.name}",
                )

    # ------------------------------------------------------------------
    # Trust ring 3: per-block crash containment
    # ------------------------------------------------------------------

    def _contain_block_crash(self, error: Exception, fn: CFunction) -> None:
        """An unexpected exception during a symbolic block's analysis is
        contained at the block boundary: counted, recorded with a
        delta-debugged repro, and the function degraded to pure qualifier
        inference — the same fallback a budget breach takes."""
        from repro.crash import record_crash
        from repro.mixy.c.pretty import pretty_program
        from repro.shrink import shrink_c_program

        smt.get_service().stats.blocks_contained += 1
        shrunk = shrink_c_program(self.program, self._crash_probe(type(error)))
        path = record_crash(
            error,
            phase=f"mixy:symbolic-block:{fn.name}",
            source=pretty_program(self.program),
            shrunk_source=pretty_program(shrunk),
            crash_dir=self.config.crash_dir,
            injector=smt.get_service().fault_injector,
        )
        where = path or "(report could not be written)"
        self.executor.warn(
            CErrKind.CRASH,
            f"analysis crashed ({type(error).__name__}: {error}); degraded "
            f"to qualifier inference — repro at {where}",
            fn.name,
        )
        self.qual.constrain_function(fn.name)

    def _crash_probe(self, error_type: type):
        """A shrink predicate: does re-analyzing this candidate program
        crash with the same exception type?  Probes run a fresh Mixy on a
        fresh solver service (with a clone of the fault schedule, if
        any), so they never disturb the shared service or re-enter
        containment."""
        base_injector = smt.get_service().fault_injector
        paranoid = smt.get_service().paranoid
        entry, entry_function = self._entry

        def crashes(candidate: CProgram) -> bool:
            from dataclasses import replace as dc_replace

            from repro.smt.service import SolverService

            service = SolverService(paranoid=paranoid)
            if base_injector is not None:
                service.fault_injector = base_injector.clone()
            saved = smt.get_service()
            smt.set_service(service)
            try:
                config = dc_replace(self.config, contain_crashes=False, budget=None)
                Mixy(candidate, config).run(entry, entry_function)
            except Exception as probe_error:
                return type(probe_error) is error_type
            finally:
                smt.set_service(saved)
            return False

        return crashes

    # ------------------------------------------------------------------
    # Trust ring 1: witness replay of NULL_DEREF warnings
    # ------------------------------------------------------------------

    def _check_witness(
        self, state: CState, ptr: smt.Term, warning: CWarning
    ) -> Optional["Witness"]:
        """Replay a fresh NULL_DEREF or CHECK_FAIL warning through the
        concrete mini-C interpreter (installed as the executor's
        ``witness_checker``).  For CHECK_FAIL the ``ptr`` slot carries
        the checked condition's term instead of a pointer."""
        ctx = self._replay_context
        if ctx is None:
            return None
        from repro.witness import validate_c_check, validate_c_null_deref

        exact = (
            self.stats["typed_calls"] == ctx.typed_calls
            and self.executor.stats["lazy_objects"] == ctx.lazy_objects
            and not any(
                w.kind in _INEXACT_KINDS
                for w in self.executor.warnings[ctx.warnings_len:]
            )
        )
        if warning.kind is CErrKind.CHECK_FAIL:
            return validate_c_check(
                self.program,
                ctx.fn,
                ctx.args,
                ctx.state,
                ctx.global_env,
                self.executor.fn_addresses,
                state,
                ptr,
                exact=exact,
            )
        return validate_c_null_deref(
            self.program,
            ctx.fn,
            ctx.args,
            ctx.state,
            ctx.global_env,
            self.executor.fn_addresses,
            state,
            ptr,
            exact=exact,
        )

    # ------------------------------------------------------------------
    # Typed calls from symbolic context (rule SETypBlock's MIXY analog)
    # ------------------------------------------------------------------

    def _typed_call_hook(
        self, name: str, args: list[smt.Term], state: CState
    ) -> Iterator[tuple[CState, Optional[smt.Term]]]:
        self.stats["typed_calls"] += 1
        fn = self.program.functions[name]
        # §4.3 "Caching Typed Blocks": "we first translate symbolic values
        # into types, then use the translated types as the calling
        # context".  The translation (may-be-null per pointer argument)
        # costs one solver query per argument, so compute it once and use
        # it both as the cache key and as the constraint seed.
        arg_nullness: list[Optional[bool]] = []
        for i, arg in enumerate(args):
            if i < len(fn.params) and isinstance(fn.params[i].typ, PtrType):
                arg_nullness.append(self._may_be_null(state, arg))
            else:
                arg_nullness.append(None)
        cache_key = ("typed-block", name, tuple(arg_nullness))
        if self.config.enable_cache and cache_key in self._cache:
            self.stats["cache_hits"] += 1
            # The constraints this context contributes were already added
            # (the graph grows monotonically), so only the state effects
            # (havoc + return shaping) are replayed below.
        else:
            # Run qualifier inference over the typed region rooted here.
            typed, frontier = self._reachable_partition(name)
            for t in sorted(typed):
                self.qual.constrain_function(t)
            for f in sorted(frontier):
                self._analyze_symbolic_function(f)
            # §4.1: translate argument symbolic values to type constraints.
            for i, maybe_null in enumerate(arg_nullness):
                if maybe_null:
                    slot = self.qual.param_slot(fn, i)
                    if slot.top is not None:
                        self.qual.graph.add_flow(
                            NULL,
                            slot.top,
                            f"symbolic argument {i + 1} of call to {name}",
                        )
            if self.config.enable_cache:
                self._cache[cache_key] = _CacheEntry([], [])
        # Havoc memory the typed callee may reach (§4.2-flavored SETypBlock).
        if self.config.havoc_on_typed_call:
            state = self._havoc_reachable(state, args)
        # Conservative return value from the callee's (inferred) type.
        state, ret = self._havoc_return_value(fn, state)
        yield state, ret

    def _havoc_reachable(self, state: CState, args: list[smt.Term]) -> CState:
        """Forget cells reachable from the arguments and globals — the
        typed block 'may make any number of writes not captured by the
        type system'."""
        from repro.mixy.symexec import _constant_leaves

        reachable: set[int] = set()
        queue: list[int] = []
        for arg in args:
            queue.extend(_constant_leaves(arg))
        queue.extend(self.executor.global_env.values())
        while queue:
            address = queue.pop()
            obj = self._object_containing(state, address)
            if obj is None or obj.base in reachable:
                continue
            reachable.add(obj.base)
            for i in range(obj.size):
                value = state.cells.get(obj.base + i)
                if value is not None:
                    queue.extend(_constant_leaves(value))
        for base in reachable:
            obj = state.objects[base]
            for i in range(obj.size):
                state = state.write(
                    obj.base + i, self.executor.fresh_symbol("havoc")
                )
        return state

    @staticmethod
    def _object_containing(state: CState, address: int) -> Optional[CObj]:
        for base, obj in state.objects.items():
            if base <= address < base + obj.size:
                return obj
        return None

    def _havoc_return_value(
        self, fn: CFunction, state: CState
    ) -> tuple[CState, Optional[smt.Term]]:
        if fn.ret == VOID_T:
            return state, None
        if isinstance(fn.ret, PtrType) and not isinstance(fn.ret.elem, FunType):
            ret_slot = self.qual.return_slot(fn)
            solution = self.qual.solution(ret_slot)
            state, obj = self.executor.allocate_object(
                state,
                fn.ret.elem,
                f"ret:{fn.name}",
                init=self.executor.fresh_symbol(f"ret_{fn.name}_mem"),
            )
            address = smt.int_const(obj.base)
            if solution is NONNULL or fn.nonnull_return:
                return state, address
            choice = self.executor.fresh_symbol(f"{fn.name}_retnull")
            value = simplify(
                smt.ite(smt.eq(choice, smt.int_const(0)), smt.int_const(0), address)
            )
            return state, value
        return state, self.executor.fresh_symbol(f"ret_{fn.name}")

    # ------------------------------------------------------------------
    # Symbolic entry
    # ------------------------------------------------------------------

    def _run_symbolic(self, entry_function: str) -> None:
        fn = self.program.functions[entry_function]
        assert fn.body is not None
        state = self.executor.initial_state()
        # C semantics: globals are zero-initialized (or take initializers).
        self.executor.global_env = {}
        init_frame_types = {}
        from repro.mixy.c.typeinfo import TypeInfo

        typeinfo = TypeInfo(self.program, init_frame_types)
        for gname, g in sorted(self.program.globals.items()):
            state, obj = self.executor.allocate_object(state, g.typ, gname)
            self.executor.global_env[gname] = obj.base
        for gname, g in sorted(self.program.globals.items()):
            if g.init is None:
                continue
            value = self._eval_global_init(g.init, state)
            if value is not None:
                state = state.write(self.executor.global_env[gname], value)
        args = [
            self.executor.fresh_symbol(f"arg_{p.name}") for p in fn.params
        ]
        saved_context = self._replay_context
        if self.config.validate_witnesses:
            self._replay_context = _ReplayContext(
                fn,
                list(args),
                state,
                dict(self.executor.global_env),
                self.stats["typed_calls"],
                self.executor.stats["lazy_objects"],
                len(self.executor.warnings),
            )
        try:
            for _result in self.executor.execute_function(fn, args, state):
                pass
        except CTypeError:
            raise  # a frontend/program error, not an analysis crash
        except Exception as error:
            if not self.config.contain_crashes:
                raise
            self._contain_block_crash(error, fn)
        finally:
            self._replay_context = saved_context

    def _eval_global_init(self, init, state: CState) -> Optional[smt.Term]:
        from repro.mixy.c.ast import IntLit, NullLit, VarRef

        if isinstance(init, IntLit):
            return smt.int_const(init.value)
        if isinstance(init, NullLit):
            return smt.int_const(0)
        if isinstance(init, VarRef) and init.name in self.executor.fn_addresses:
            return smt.int_const(self.executor.fn_addresses[init.name])
        return None


def _is_havoc(term: smt.Term) -> bool:
    from repro.smt.terms import Kind

    return term.kind is Kind.VAR and str(term.payload).startswith("havoc!")


def _find_calls(fn: CFunction) -> list[tuple[Call, str]]:
    """All call expressions in a function body."""
    from repro.mixy.c.ast import (
        AddrOf,
        Assign,
        Assume,
        Binary,
        Block,
        Cast,
        CExpr,
        Check,
        CStmt,
        Deref,
        ExprStmt,
        Field,
        If,
        Malloc,
        Return,
        Unary,
        VarDecl,
        While,
    )

    calls: list[tuple[Call, str]] = []

    def walk_expr(e: CExpr) -> None:
        if isinstance(e, Call):
            calls.append((e, fn.name))
            walk_expr(e.fn)
            for a in e.args:
                walk_expr(a)
        elif isinstance(e, (Deref, AddrOf)):
            walk_expr(e.ptr if isinstance(e, Deref) else e.target)
        elif isinstance(e, Field):
            walk_expr(e.obj)
        elif isinstance(e, Unary):
            walk_expr(e.operand)
        elif isinstance(e, Binary):
            walk_expr(e.left)
            walk_expr(e.right)
        elif isinstance(e, Assign):
            walk_expr(e.lhs)
            walk_expr(e.rhs)
        elif isinstance(e, Cast):
            walk_expr(e.operand)
        elif isinstance(e, (Assume, Check)):
            walk_expr(e.cond)

    def walk_stmt(s: CStmt) -> None:
        if isinstance(s, Block):
            for inner in s.stmts:
                walk_stmt(inner)
        elif isinstance(s, VarDecl) and s.init is not None:
            walk_expr(s.init)
        elif isinstance(s, ExprStmt):
            walk_expr(s.expr)
        elif isinstance(s, If):
            walk_expr(s.cond)
            walk_stmt(s.then)
            if s.els is not None:
                walk_stmt(s.els)
        elif isinstance(s, While):
            walk_expr(s.cond)
            walk_stmt(s.body)
        elif isinstance(s, Return) and s.value is not None:
            walk_expr(s.value)

    if fn.body is not None:
        walk_stmt(fn.body)
    return calls
