"""A second qualifier client: taint tracking for C strings.

The paper's conclusion: "we plan to extend MIXY to check other
properties ... and to mix other types of analysis together."  The
qualifier machinery of :mod:`repro.mixy.qual` is a generic
source-to-sink flow engine; this module instantiates it with

- source constant ``tainted`` — seeded at the returns of configured
  *source* functions (e.g. ``read_user_input``),
- sink constant ``untainted`` — required at configured parameter
  positions of *sink* functions (e.g. the query argument of
  ``exec_query``),

so a warning is a flow of attacker-controlled data into a trusted
position.  The whole value-flow skeleton (assignments, calls, fields,
deep unification, call-graph integration) is inherited unchanged from
the nullness engine — the nullness-specific seeds (``NULL`` literals,
``malloc``, ``nonnull`` annotations) land on lattice constants that are
simply not this instance's poles, so they are inert.

*Sanitizers* are modeled the natural way: an extern function not listed
as a source breaks the flow (its return is a fresh unconstrained slot).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.mixy.c.ast import Call, CFunction, CProgram
from repro.mixy.qual import (
    QConst,
    QualConfig,
    QualGraph,
    QualInference,
    QualType,
    QualWarning,
)

TAINTED = QConst("tainted")
UNTAINTED = QConst("untainted")


@dataclass(frozen=True)
class TaintSpec:
    """Which functions produce and which consume sensitive data."""

    #: functions whose return value is attacker-controlled
    sources: frozenset[str] = frozenset()
    #: function -> parameter indices that must stay untainted
    sinks: Mapping[str, tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        overlap = self.sources & set(self.sinks)
        if overlap:
            raise ValueError(f"functions cannot be both source and sink: {overlap}")


class TaintInference(QualInference):
    """Flow-insensitive taint inference over mini-C."""

    def __init__(
        self,
        program: CProgram,
        spec: TaintSpec,
        config: Optional[QualConfig] = None,
        callees_of: Optional[Callable[[Call, str], list[str]]] = None,
    ) -> None:
        super().__init__(
            program, config, callees_of, graph=QualGraph(TAINTED, UNTAINTED)
        )
        self.spec = spec

    # -- seed points (the only taint-specific behavior) ------------------------

    def return_slot(self, fn: CFunction) -> QualType:
        qt = super().return_slot(fn)
        if fn.name in self.spec.sources and qt.top is not None:
            self.graph.add_flow(
                TAINTED, qt.top, f"return of taint source {fn.name}"
            )
        return qt

    def param_slot(self, fn: CFunction, index: int) -> QualType:
        qt = super().param_slot(fn, index)
        indices = self.spec.sinks.get(fn.name, ())
        if index in indices and qt.top is not None:
            self.graph.add_flow(
                qt.top,
                UNTAINTED,
                f"untainted argument {index + 1} of sink {fn.name}",
            )
        return qt


def analyze_taint(
    program: CProgram,
    spec: TaintSpec,
    callees_of: Optional[Callable[[Call, str], list[str]]] = None,
) -> list[QualWarning]:
    """Run taint inference over every function; return the flows found."""
    inference = TaintInference(program, spec, callees_of=callees_of)
    inference.constrain_globals()
    for name in program.functions:
        inference.constrain_function(name)
    return inference.warnings()
