"""Lexer and recursive-descent parser for mini-C.

The accepted subset covers the paper's vsftpd case studies: struct
definitions, globals (including function pointers declared as
``ret (*name)(params)``), function definitions with ``MIX(typed)`` /
``MIX(symbolic)`` annotations and ``nonnull`` qualifiers, and the usual
statement and expression forms.  ``malloc(sizeof(T))`` is a primitive
expression; string literals denote fresh non-null character buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mixy.c.ast import (
    AddrOf,
    Assign,
    Assume,
    Binary,
    Block,
    Check,
    Call,
    Cast,
    CExpr,
    CFunction,
    CProgram,
    CStmt,
    CStructDef,
    CType,
    CHAR_T,
    Deref,
    ExprStmt,
    Field,
    FunType,
    Global,
    If,
    INT_T,
    IntLit,
    Malloc,
    NullLit,
    Param,
    PtrType,
    Return,
    StrLit,
    StructType,
    Symbolic,
    Unary,
    VarDecl,
    VarRef,
    VOID_T,
    While,
)


class CParseError(SyntaxError):
    """Raised on input outside the supported C subset."""


_KEYWORDS = {
    "int",
    "char",
    "void",
    "struct",
    "if",
    "else",
    "while",
    "return",
    "sizeof",
    "malloc",
    "NULL",
    "MIX",
    "nonnull",
    "typed",
    "symbolic",
    "assume",
    "check",
    "const",
}

_SYMBOLS = [
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "->",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "!",
    "&",
    "(",
    ")",
    "{",
    "}",
    ";",
    ",",
    ".",
]


@dataclass(frozen=True)
class _Tok:
    kind: str  # "int" | "string" | "ident" | "kw" | "sym" | "eof"
    text: str
    line: int


def _tokenize(source: str) -> list[_Tok]:
    tokens: list[_Tok] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CParseError(f"unterminated comment at line {line}")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(_Tok("int", source[i:j], line))
            i = j
            continue
        if ch == '"':
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise CParseError(f"unterminated string at line {line}")
            tokens.append(_Tok("string", source[i + 1 : j], line))
            i = j + 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            tokens.append(_Tok("kw" if text in _KEYWORDS else "ident", text, line))
            i = j
            continue
        for sym in _SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(_Tok("sym", sym, line))
                i += len(sym)
                break
        else:
            raise CParseError(f"unexpected character {ch!r} at line {line}")
    tokens.append(_Tok("eof", "", line))
    return tokens


_TYPE_KEYWORDS = {"int", "char", "void", "struct", "const"}


class _Parser:
    def __init__(self, tokens: list[_Tok]) -> None:
        self._toks = tokens
        self._i = 0

    # -- token helpers -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> _Tok:
        return self._toks[min(self._i + offset, len(self._toks) - 1)]

    def _next(self) -> _Tok:
        tok = self._toks[self._i]
        if tok.kind != "eof":
            self._i += 1
        return tok

    def _at(self, kind: str, text: Optional[str] = None, offset: int = 0) -> bool:
        tok = self._peek(offset)
        return tok.kind == kind and (text is None or tok.text == text)

    def _eat(self, kind: str, text: Optional[str] = None) -> bool:
        if self._at(kind, text):
            self._next()
            return True
        return False

    def _expect(self, kind: str, text: Optional[str] = None) -> _Tok:
        if not self._at(kind, text):
            tok = self._peek()
            want = text or kind
            raise CParseError(
                f"expected {want!r} but found {tok.text!r} at line {tok.line}"
            )
        return self._next()

    # -- program -----------------------------------------------------------------

    def program(self) -> CProgram:
        program = CProgram()
        while not self._at("eof"):
            for decl in self._declaration():
                program.add(decl)
        return program

    def _declaration(self):
        if self._at("kw", "struct") and self._at("sym", "{", offset=2):
            yield self._struct_def()
            return
        base, nonnull = self._base_type()
        # Function-pointer declarator: ret (*name)(params)
        if self._at("sym", "("):
            yield self._fun_ptr_global(base)
            return
        depth, nonnull2 = self._stars_and_quals()
        typ = _apply_ptrs(base, depth)
        name = self._expect("ident").text
        if self._at("sym", "("):
            yield self._function(typ, nonnull or nonnull2, name)
        else:
            init = self._expr() if self._eat("sym", "=") else None
            self._expect("sym", ";")
            yield Global(name, typ, init)

    def _struct_def(self) -> CStructDef:
        self._expect("kw", "struct")
        name = self._expect("ident").text
        self._expect("sym", "{")
        fields: list[tuple[str, CType]] = []
        while not self._eat("sym", "}"):
            base, _ = self._base_type()
            depth, _ = self._stars_and_quals()
            fname = self._expect("ident").text
            fields.append((fname, _apply_ptrs(base, depth)))
            self._expect("sym", ";")
        self._expect("sym", ";")
        return CStructDef(name, tuple(fields))

    def _fun_ptr_global(self, ret: CType) -> Global:
        self._expect("sym", "(")
        self._expect("sym", "*")
        name = self._expect("ident").text
        self._expect("sym", ")")
        self._expect("sym", "(")
        param_types: list[CType] = []
        if not self._at("sym", ")"):
            if not (self._at("kw", "void") and self._at("sym", ")", offset=1)):
                while True:
                    base, _ = self._base_type()
                    depth, _ = self._stars_and_quals()
                    if self._at("ident"):
                        self._next()  # optional parameter name
                    param_types.append(_apply_ptrs(base, depth))
                    if not self._eat("sym", ","):
                        break
            else:
                self._next()  # consume 'void'
        self._expect("sym", ")")
        init = self._expr() if self._eat("sym", "=") else None
        self._expect("sym", ";")
        typ = PtrType(FunType(tuple(param_types), ret))
        return Global(name, typ, init)

    def _function(self, ret: CType, nonnull_return: bool, name: str) -> CFunction:
        self._expect("sym", "(")
        params: list[Param] = []
        if not self._at("sym", ")"):
            if self._at("kw", "void") and self._at("sym", ")", offset=1):
                self._next()
            else:
                while True:
                    params.append(self._param())
                    if not self._eat("sym", ","):
                        break
        self._expect("sym", ")")
        mix: Optional[str] = None
        if self._eat("kw", "MIX"):
            self._expect("sym", "(")
            tok = self._next()
            if tok.text not in ("typed", "symbolic"):
                raise CParseError(
                    f"MIX annotation must be typed or symbolic, got {tok.text!r}"
                )
            mix = tok.text
            self._expect("sym", ")")
        body: Optional[Block] = None
        if self._at("sym", "{"):
            body = self._block()
        else:
            self._expect("sym", ";")
        return CFunction(name, tuple(params), ret, body, mix, nonnull_return)

    def _param(self) -> Param:
        base, nonnull = self._base_type()
        if self._at("sym", "(") and self._at("sym", "*", offset=1):
            name, typ = self._fn_ptr_declarator(base)
            return Param(name, typ, False)
        depth, nonnull2 = self._stars_and_quals()
        name = self._expect("ident").text
        return Param(name, _apply_ptrs(base, depth), nonnull or nonnull2)

    def _fn_ptr_declarator(self, ret: CType) -> tuple[str, CType]:
        """``(*name)(param-types)`` — a function-pointer declarator."""
        self._expect("sym", "(")
        self._expect("sym", "*")
        name = self._expect("ident").text
        self._expect("sym", ")")
        self._expect("sym", "(")
        param_types: list[CType] = []
        if not self._at("sym", ")"):
            if self._at("kw", "void") and self._at("sym", ")", offset=1):
                self._next()
            else:
                while True:
                    base, _ = self._base_type()
                    depth, _ = self._stars_and_quals()
                    if self._at("ident"):
                        self._next()  # optional parameter name
                    param_types.append(_apply_ptrs(base, depth))
                    if not self._eat("sym", ","):
                        break
        self._expect("sym", ")")
        return name, PtrType(FunType(tuple(param_types), ret))

    # -- types -------------------------------------------------------------------

    def _base_type(self) -> tuple[CType, bool]:
        nonnull = False
        while self._eat("kw", "const"):
            pass
        if self._eat("kw", "struct"):
            name = self._expect("ident").text
            base: CType = StructType(name)
        else:
            tok = self._next()
            mapping = {"int": INT_T, "char": CHAR_T, "void": VOID_T}
            if tok.text not in mapping:
                raise CParseError(f"expected a type, got {tok.text!r} at line {tok.line}")
            base = mapping[tok.text]
        while self._eat("kw", "const"):
            pass
        return base, nonnull

    def _stars_and_quals(self) -> tuple[int, bool]:
        depth = 0
        nonnull = False
        while True:
            if self._eat("sym", "*"):
                depth += 1
            elif self._eat("kw", "nonnull"):
                nonnull = True
            elif self._eat("kw", "const"):
                pass
            else:
                return depth, nonnull

    def _looks_like_type(self) -> bool:
        return self._peek().kind == "kw" and self._peek().text in _TYPE_KEYWORDS

    # -- statements ---------------------------------------------------------------

    def _block(self) -> Block:
        self._expect("sym", "{")
        stmts: list[CStmt] = []
        while not self._eat("sym", "}"):
            stmts.append(self._stmt())
        return Block(tuple(stmts))

    def _stmt(self) -> CStmt:
        if self._at("sym", "{"):
            return self._block()
        if self._at("kw", "if"):
            return self._if()
        if self._at("kw", "while"):
            self._next()
            self._expect("sym", "(")
            cond = self._expr()
            self._expect("sym", ")")
            return While(cond, self._as_block(self._stmt()))
        if self._at("kw", "return"):
            self._next()
            value = None if self._at("sym", ";") else self._expr()
            self._expect("sym", ";")
            return Return(value)
        if self._looks_like_type():
            base, _ = self._base_type()
            if self._at("sym", "(") and self._at("sym", "*", offset=1):
                name, typ = self._fn_ptr_declarator(base)
                init = self._expr() if self._eat("sym", "=") else None
                self._expect("sym", ";")
                return VarDecl(name, typ, init)
            depth, _ = self._stars_and_quals()
            name = self._expect("ident").text
            init = self._expr() if self._eat("sym", "=") else None
            self._expect("sym", ";")
            return VarDecl(name, _apply_ptrs(base, depth), init)
        expr = self._expr()
        self._expect("sym", ";")
        return ExprStmt(expr)

    def _if(self) -> If:
        self._expect("kw", "if")
        self._expect("sym", "(")
        cond = self._expr()
        self._expect("sym", ")")
        then = self._as_block(self._stmt())
        els = None
        if self._eat("kw", "else"):
            els = self._as_block(self._stmt())
        return If(cond, then, els)

    @staticmethod
    def _as_block(stmt: CStmt) -> Block:
        return stmt if isinstance(stmt, Block) else Block((stmt,))

    # -- expressions (C precedence) --------------------------------------------------

    def _expr(self) -> CExpr:
        return self._assign()

    def _assign(self) -> CExpr:
        lhs = self._or()
        if self._eat("sym", "="):
            return Assign(lhs, self._assign())
        return lhs

    def _or(self) -> CExpr:
        left = self._and()
        while self._eat("sym", "||"):
            left = Binary("||", left, self._and())
        return left

    def _and(self) -> CExpr:
        left = self._equality()
        while self._eat("sym", "&&"):
            left = Binary("&&", left, self._equality())
        return left

    def _equality(self) -> CExpr:
        left = self._relational()
        while self._at("sym", "==") or self._at("sym", "!="):
            op = self._next().text
            left = Binary(op, left, self._relational())
        return left

    def _relational(self) -> CExpr:
        left = self._additive()
        while any(self._at("sym", s) for s in ("<", "<=", ">", ">=")):
            op = self._next().text
            left = Binary(op, left, self._additive())
        return left

    def _additive(self) -> CExpr:
        left = self._multiplicative()
        while self._at("sym", "+") or self._at("sym", "-"):
            op = self._next().text
            left = Binary(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> CExpr:
        left = self._unary()
        while self._at("sym", "*") or self._at("sym", "/"):
            op = self._next().text
            left = Binary(op, left, self._unary())
        return left

    def _unary(self) -> CExpr:
        if self._eat("sym", "!"):
            return Unary("!", self._unary())
        if self._eat("sym", "-"):
            return Unary("-", self._unary())
        if self._eat("sym", "*"):
            return Deref(self._unary())
        if self._eat("sym", "&"):
            return AddrOf(self._unary())
        # Cast: '(' type ... ')'
        if self._at("sym", "(") and self._peek(1).kind == "kw" and self._peek(
            1
        ).text in _TYPE_KEYWORDS:
            self._next()
            base, _ = self._base_type()
            depth, _ = self._stars_and_quals()
            self._expect("sym", ")")
            return Cast(_apply_ptrs(base, depth), self._unary())
        return self._postfix()

    def _postfix(self) -> CExpr:
        expr = self._primary()
        while True:
            if self._eat("sym", "("):
                args: list[CExpr] = []
                if not self._at("sym", ")"):
                    while True:
                        args.append(self._expr())
                        if not self._eat("sym", ","):
                            break
                self._expect("sym", ")")
                expr = Call(expr, tuple(args))
            elif self._eat("sym", "->"):
                expr = Field(expr, self._expect("ident").text, arrow=True)
            elif self._eat("sym", "."):
                expr = Field(expr, self._expect("ident").text, arrow=False)
            else:
                return expr

    def _primary(self) -> CExpr:
        if self._at("int"):
            return IntLit(int(self._next().text))
        if self._at("string"):
            return StrLit(self._next().text)
        if self._eat("kw", "NULL"):
            return NullLit()
        if self._eat("kw", "malloc"):
            self._expect("sym", "(")
            self._expect("kw", "sizeof")
            self._expect("sym", "(")
            base, _ = self._base_type()
            depth, _ = self._stars_and_quals()
            self._expect("sym", ")")
            self._expect("sym", ")")
            return Malloc(_apply_ptrs(base, depth))
        if self._eat("kw", "symbolic"):
            self._expect("sym", "(")
            self._expect("sym", ")")
            return Symbolic()
        if self._at("kw") and self._peek().text in ("assume", "check"):
            kw = self._next().text
            self._expect("sym", "(")
            cond = self._expr()
            self._expect("sym", ")")
            return Assume(cond) if kw == "assume" else Check(cond)
        if self._at("ident"):
            return VarRef(self._next().text)
        if self._eat("sym", "("):
            inner = self._expr()
            self._expect("sym", ")")
            return inner
        tok = self._peek()
        raise CParseError(f"unexpected token {tok.text!r} at line {tok.line}")


def _apply_ptrs(base: CType, depth: int) -> CType:
    for _ in range(depth):
        base = PtrType(base)
    return base


def parse_program(source: str) -> CProgram:
    """Parse a mini-C translation unit."""
    return _Parser(_tokenize(source)).program()
