"""Expression typing for mini-C.

A lightweight type computation (not a checker — mini-C programs in the
corpus are assumed compilable); the qualifier inference, pointer
analysis, and symbolic executor all need to know the static type of an
expression to mirror its qualifier/points-to/value structure.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.mixy.c.ast import (
    AddrOf,
    Assign,
    Assume,
    Binary,
    Check,
    Call,
    Cast,
    CExpr,
    CProgram,
    CType,
    CHAR_T,
    Deref,
    Field,
    FunType,
    INT_T,
    IntLit,
    Malloc,
    NullLit,
    PtrType,
    StrLit,
    StructType,
    Symbolic,
    Unary,
    VarRef,
    VOID_T,
)


class CTypeError(TypeError):
    """The expression does not type in mini-C."""


class TypeInfo:
    """Types expressions against a program and a local environment."""

    def __init__(self, program: CProgram, locals_: Optional[Mapping[str, CType]] = None):
        self.program = program
        self.locals = dict(locals_ or {})

    def with_locals(self, locals_: Mapping[str, CType]) -> "TypeInfo":
        return TypeInfo(self.program, locals_)

    def var_type(self, name: str) -> CType:
        if name in self.locals:
            return self.locals[name]
        if name in self.program.globals:
            return self.program.globals[name].typ
        if name in self.program.functions:
            f = self.program.functions[name]
            return FunType(tuple(p.typ for p in f.params), f.ret)
        raise CTypeError(f"unknown identifier {name}")

    def type_of(self, expr: CExpr) -> CType:
        if isinstance(expr, IntLit):
            return INT_T
        if isinstance(expr, StrLit):
            return PtrType(CHAR_T)
        if isinstance(expr, NullLit):
            return PtrType(VOID_T)
        if isinstance(expr, VarRef):
            return self.var_type(expr.name)
        if isinstance(expr, Deref):
            inner = self.type_of(expr.ptr)
            if not isinstance(inner, PtrType):
                raise CTypeError(f"dereference of non-pointer type {inner}")
            return inner.elem
        if isinstance(expr, AddrOf):
            return PtrType(self.type_of(expr.target))
        if isinstance(expr, Field):
            obj_type = self.type_of(expr.obj)
            if expr.arrow:
                if not isinstance(obj_type, PtrType):
                    raise CTypeError(f"-> on non-pointer type {obj_type}")
                obj_type = obj_type.elem
            struct = self.program.struct_def(obj_type)
            return struct.field_type(expr.name)
        if isinstance(expr, Unary):
            return INT_T
        if isinstance(expr, Binary):
            if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
                return INT_T
            left = self.type_of(expr.left)
            # Pointer arithmetic keeps the pointer type.
            return left if isinstance(left, PtrType) else INT_T
        if isinstance(expr, Assign):
            return self.type_of(expr.lhs)
        if isinstance(expr, Call):
            fn_type = self.callee_type(expr)
            return fn_type.ret
        if isinstance(expr, Malloc):
            return PtrType(expr.typ)
        if isinstance(expr, Cast):
            return expr.typ
        if isinstance(expr, Symbolic):
            return INT_T
        if isinstance(expr, (Assume, Check)):
            self.type_of(expr.cond)
            return INT_T
        raise CTypeError(f"cannot type expression {expr!r}")

    def callee_type(self, call: Call) -> FunType:
        fn_type = self.type_of(call.fn)
        if isinstance(fn_type, PtrType) and isinstance(fn_type.elem, FunType):
            fn_type = fn_type.elem
        if not isinstance(fn_type, FunType):
            raise CTypeError(f"call through non-function type {fn_type}")
        return fn_type

    def is_lvalue(self, expr: CExpr) -> bool:
        return isinstance(expr, (VarRef, Deref, Field))
