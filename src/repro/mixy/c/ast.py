"""Abstract syntax for the mini-C language analyzed by MIXY."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CType:
    """Base class of mini-C types."""


@dataclass(frozen=True)
class Scalar(CType):
    name: str  # "int", "char", "void"

    def __str__(self) -> str:
        return self.name


INT_T = Scalar("int")
CHAR_T = Scalar("char")
VOID_T = Scalar("void")


@dataclass(frozen=True)
class PtrType(CType):
    elem: CType

    def __str__(self) -> str:
        return f"{self.elem}*"


@dataclass(frozen=True)
class StructType(CType):
    """A reference to ``struct name`` (fields live in the program table)."""

    name: str

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True)
class FunType(CType):
    params: tuple[CType, ...]
    ret: CType

    def __str__(self) -> str:
        inner = ", ".join(str(p) for p in self.params)
        return f"{self.ret} (*)({inner})"


def pointer_depth(typ: CType) -> int:
    depth = 0
    while isinstance(typ, PtrType):
        depth += 1
        typ = typ.elem
    return depth


def pointee(typ: CType) -> CType:
    if not isinstance(typ, PtrType):
        raise TypeError(f"{typ} is not a pointer type")
    return typ.elem


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CExpr:
    pass


@dataclass(frozen=True)
class IntLit(CExpr):
    value: int


@dataclass(frozen=True)
class StrLit(CExpr):
    value: str


@dataclass(frozen=True)
class NullLit(CExpr):
    """The NULL macro — the qualifier system auto-annotates it ``null``."""


@dataclass(frozen=True)
class VarRef(CExpr):
    name: str


@dataclass(frozen=True)
class Deref(CExpr):
    """``*e``"""

    ptr: CExpr


@dataclass(frozen=True)
class AddrOf(CExpr):
    """``&e``"""

    target: CExpr


@dataclass(frozen=True)
class Field(CExpr):
    """``e.name`` (arrow=False) or ``e->name`` (arrow=True)."""

    obj: CExpr
    name: str
    arrow: bool


@dataclass(frozen=True)
class Unary(CExpr):
    op: str  # "!", "-"
    operand: CExpr


@dataclass(frozen=True)
class Binary(CExpr):
    op: str  # + - * == != < <= > >= && ||
    left: CExpr
    right: CExpr


@dataclass(frozen=True)
class Assign(CExpr):
    """``lhs = rhs`` — an expression, as in C."""

    lhs: CExpr
    rhs: CExpr


@dataclass(frozen=True)
class Call(CExpr):
    """A call; ``fn`` is a VarRef for direct calls or any pointer expression
    for calls through function pointers."""

    fn: CExpr
    args: tuple[CExpr, ...]


@dataclass(frozen=True)
class Malloc(CExpr):
    """``malloc(sizeof(T))`` — allocation of one object of type T."""

    typ: CType


@dataclass(frozen=True)
class Cast(CExpr):
    typ: CType
    operand: CExpr


@dataclass(frozen=True)
class Symbolic(CExpr):
    """``symbolic()`` — an arbitrary int the analysis quantifies over."""


@dataclass(frozen=True)
class Assume(CExpr):
    """``assume(e)`` — restrict the analysis to runs where ``e`` holds."""

    cond: CExpr


@dataclass(frozen=True)
class Check(CExpr):
    """``check(e)`` — a property obligation: warn if ``e`` can be false."""

    cond: CExpr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CStmt:
    pass


@dataclass(frozen=True)
class VarDecl(CStmt):
    name: str
    typ: CType
    init: Optional[CExpr] = None


@dataclass(frozen=True)
class ExprStmt(CStmt):
    expr: CExpr


@dataclass(frozen=True)
class If(CStmt):
    cond: CExpr
    then: "Block"
    els: Optional["Block"] = None


@dataclass(frozen=True)
class While(CStmt):
    cond: CExpr
    body: "Block"


@dataclass(frozen=True)
class Return(CStmt):
    value: Optional[CExpr] = None


@dataclass(frozen=True)
class Block(CStmt):
    stmts: tuple[CStmt, ...]


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    name: str
    typ: CType
    nonnull: bool = False  # the `nonnull` qualifier annotation


@dataclass(frozen=True)
class CFunction:
    name: str
    params: tuple[Param, ...]
    ret: CType
    body: Optional[Block]  # None for extern declarations
    mix: Optional[str] = None  # None | "typed" | "symbolic"
    nonnull_return: bool = False


@dataclass(frozen=True)
class Global:
    name: str
    typ: CType
    init: Optional[CExpr] = None


@dataclass(frozen=True)
class CStructDef:
    name: str
    fields: tuple[tuple[str, CType], ...]

    def field_type(self, name: str) -> CType:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise KeyError(f"struct {self.name} has no field {name}")

    def field_index(self, name: str) -> int:
        for i, (fname, _t) in enumerate(self.fields):
            if fname == name:
                return i
        raise KeyError(f"struct {self.name} has no field {name}")


CDecl = Union[CFunction, Global, CStructDef]


@dataclass
class CProgram:
    structs: dict[str, CStructDef] = field(default_factory=dict)
    globals: dict[str, Global] = field(default_factory=dict)
    functions: dict[str, CFunction] = field(default_factory=dict)

    def struct_def(self, typ: CType) -> CStructDef:
        if not isinstance(typ, StructType):
            raise TypeError(f"{typ} is not a struct type")
        return self.structs[typ.name]

    def add(self, decl: CDecl) -> None:
        if isinstance(decl, CStructDef):
            self.structs[decl.name] = decl
        elif isinstance(decl, Global):
            self.globals[decl.name] = decl
        elif isinstance(decl, CFunction):
            existing = self.functions.get(decl.name)
            # A definition supersedes an extern declaration.
            if existing is None or existing.body is None:
                self.functions[decl.name] = decl
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown declaration {decl!r}")
