"""Pretty-printer for mini-C — the inverse of the parser.

``parse_program(pretty_program(p))`` is structurally equal to ``p``
(modulo the extern-vs-definition merge the program table performs),
which the round-trip tests pin down.  Useful for emitting generated or
refactored corpus programs.
"""

from __future__ import annotations

from repro.mixy.c.ast import (
    AddrOf,
    Assign,
    Assume,
    Binary,
    Block,
    Call,
    Cast,
    CExpr,
    Check,
    CFunction,
    CProgram,
    CStmt,
    CStructDef,
    CType,
    Deref,
    ExprStmt,
    Field,
    FunType,
    Global,
    If,
    IntLit,
    Malloc,
    NullLit,
    PtrType,
    Return,
    Scalar,
    StrLit,
    StructType,
    Symbolic,
    Unary,
    VarDecl,
    VarRef,
    While,
)

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
}
_UNARY_LEVEL = 7
_POSTFIX_LEVEL = 8


def type_text(typ: CType) -> str:
    """Render a type in declaration-prefix form (pointers as suffixes)."""
    if isinstance(typ, Scalar):
        return typ.name
    if isinstance(typ, StructType):
        return f"struct {typ.name}"
    if isinstance(typ, PtrType):
        return f"{type_text(typ.elem)} *"
    raise TypeError(f"cannot render type {typ}")


def declarator(name: str, typ: CType) -> str:
    """``typ name`` with C's function-pointer declarator when needed."""
    if isinstance(typ, PtrType) and isinstance(typ.elem, FunType):
        fun = typ.elem
        params = ", ".join(type_text(p) for p in fun.params) or "void"
        return f"{type_text(fun.ret)} (*{name})({params})"
    return f"{type_text(typ)}{name}" if type_text(typ).endswith("*") else f"{type_text(typ)} {name}"


def expr_text(expr: CExpr, context: int = 0) -> str:
    text, level = _expr(expr)
    return f"({text})" if level < context else text


def _expr(expr: CExpr) -> tuple[str, int]:
    if isinstance(expr, IntLit):
        if expr.value < 0:
            return f"(-{-expr.value})", _POSTFIX_LEVEL
        return str(expr.value), _POSTFIX_LEVEL
    if isinstance(expr, StrLit):
        return f'"{expr.value}"', _POSTFIX_LEVEL
    if isinstance(expr, NullLit):
        return "NULL", _POSTFIX_LEVEL
    if isinstance(expr, VarRef):
        return expr.name, _POSTFIX_LEVEL
    if isinstance(expr, Deref):
        return f"*{expr_text(expr.ptr, _UNARY_LEVEL)}", _UNARY_LEVEL
    if isinstance(expr, AddrOf):
        return f"&{expr_text(expr.target, _UNARY_LEVEL)}", _UNARY_LEVEL
    if isinstance(expr, Field):
        sep = "->" if expr.arrow else "."
        return f"{expr_text(expr.obj, _POSTFIX_LEVEL)}{sep}{expr.name}", _POSTFIX_LEVEL
    if isinstance(expr, Unary):
        return f"{expr.op}{expr_text(expr.operand, _UNARY_LEVEL)}", _UNARY_LEVEL
    if isinstance(expr, Binary):
        level = _PRECEDENCE[expr.op]
        left = expr_text(expr.left, level)
        right = expr_text(expr.right, level + 1)
        return f"{left} {expr.op} {right}", level
    if isinstance(expr, Assign):
        return (
            f"{expr_text(expr.lhs, _UNARY_LEVEL)} = {expr_text(expr.rhs, 0)}",
            0,
        )
    if isinstance(expr, Call):
        args = ", ".join(expr_text(a, 0) for a in expr.args)
        return f"{expr_text(expr.fn, _POSTFIX_LEVEL)}({args})", _POSTFIX_LEVEL
    if isinstance(expr, Malloc):
        return f"malloc(sizeof({type_text(expr.typ).strip()}))", _POSTFIX_LEVEL
    if isinstance(expr, Cast):
        return (
            f"({type_text(expr.typ).strip()}) {expr_text(expr.operand, _UNARY_LEVEL)}",
            _UNARY_LEVEL,
        )
    if isinstance(expr, Symbolic):
        return "symbolic()", _POSTFIX_LEVEL
    if isinstance(expr, Assume):
        return f"assume({expr_text(expr.cond, 0)})", _POSTFIX_LEVEL
    if isinstance(expr, Check):
        return f"check({expr_text(expr.cond, 0)})", _POSTFIX_LEVEL
    raise TypeError(f"cannot render expression {expr!r}")


def stmt_text(stmt: CStmt, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(stmt, Block):
        inner = "\n".join(stmt_text(s, indent + 1) for s in stmt.stmts)
        return f"{pad}{{\n{inner}\n{pad}}}" if stmt.stmts else f"{pad}{{ }}"
    if isinstance(stmt, VarDecl):
        decl = declarator(stmt.name, stmt.typ)
        if stmt.init is not None:
            return f"{pad}{decl} = {expr_text(stmt.init)};"
        return f"{pad}{decl};"
    if isinstance(stmt, ExprStmt):
        return f"{pad}{expr_text(stmt.expr)};"
    if isinstance(stmt, If):
        text = f"{pad}if ({expr_text(stmt.cond)})\n{stmt_text(stmt.then, indent)}"
        if stmt.els is not None:
            text += f"\n{pad}else\n{stmt_text(stmt.els, indent)}"
        return text
    if isinstance(stmt, While):
        return f"{pad}while ({expr_text(stmt.cond)})\n{stmt_text(stmt.body, indent)}"
    if isinstance(stmt, Return):
        if stmt.value is None:
            return f"{pad}return;"
        return f"{pad}return {expr_text(stmt.value)};"
    raise TypeError(f"cannot render statement {stmt!r}")


def function_text(fn: CFunction) -> str:
    ret = type_text(fn.ret).strip()
    params = []
    for p in fn.params:
        text = declarator(p.name, p.typ)
        if p.nonnull:
            # nonnull sits between the stars and the name.
            text = text.replace(f"*{p.name}", f"*nonnull {p.name}").replace(
                f"* {p.name}", f"*nonnull {p.name}"
            )
            if "nonnull" not in text:
                text = text.replace(f" {p.name}", f" nonnull {p.name}")
        params.append(text)
    header = f"{ret} {'*nonnull ' if fn.nonnull_return else ''}".strip()
    if fn.nonnull_return:
        header = f"{type_text(fn.ret).rstrip(' *')} *nonnull"
    signature = f"{header} {fn.name}({', '.join(params) or 'void'})"
    if fn.mix is not None:
        signature += f" MIX({fn.mix})"
    if fn.body is None:
        return signature + ";"
    return signature + "\n" + stmt_text(fn.body)


def struct_text(struct: CStructDef) -> str:
    fields = "\n".join(
        f"  {declarator(name, typ)};" for name, typ in struct.fields
    )
    return f"struct {struct.name} {{\n{fields}\n}};"


def global_text(g: Global) -> str:
    decl = declarator(g.name, g.typ)
    if g.init is not None:
        return f"{decl} = {expr_text(g.init)};"
    return f"{decl};"


def pretty_program(program: CProgram) -> str:
    parts: list[str] = []
    for struct in program.structs.values():
        parts.append(struct_text(struct))
    for g in program.globals.values():
        parts.append(global_text(g))
    for fn in program.functions.values():
        parts.append(function_text(fn))
    return "\n\n".join(parts) + "\n"
