"""A concrete interpreter for mini-C — the ground truth the C symbolic
executor is differentially tested against.

The value model mirrors :mod:`repro.mixy.symexec`: every value is an
integer; pointers are cell addresses with 0 for NULL; struct fields live
at ``base + field_index``; functions have addresses so function pointers
work.  Dereferencing NULL raises :class:`CNullDereference` — the
concrete counterpart of the executor's NULL_DEREF warning.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.mixy.c.ast import (
    AddrOf,
    Assign,
    Assume,
    Binary,
    Block,
    Call,
    Cast,
    Check,
    CExpr,
    CFunction,
    CProgram,
    CStmt,
    CType,
    Deref,
    ExprStmt,
    Field,
    If,
    IntLit,
    Malloc,
    NullLit,
    PtrType,
    Return,
    Scalar,
    StrLit,
    StructType,
    Symbolic,
    Unary,
    VarDecl,
    VarRef,
    While,
)
from repro.mixy.c.typeinfo import CTypeError, TypeInfo


class CRuntimeError(Exception):
    """A dynamic error (wild pointer, unknown identifier, ...)."""


class CNullDereference(CRuntimeError):
    """NULL was dereferenced — what the null checker guards against."""


class CStepBudgetExceeded(CRuntimeError):
    """The step budget ran out (bounds runaway loops in testing)."""


class CAssumeViolation(CRuntimeError):
    """A concrete run reached ``assume(e)`` with ``e`` false — the run
    is vacuous, neither a pass nor a failure."""


class CCheckFailure(CRuntimeError):
    """A concrete run reached ``check(e)`` with ``e`` false — the
    property concretely fails on this input."""


class _ReturnSignal(Exception):
    def __init__(self, value: int) -> None:
        self.value = value


@dataclass
class _Frame:
    fn: CFunction
    env: dict[str, int]  # variable -> cell address
    types: TypeInfo


class CInterpreter:
    """Executes mini-C programs concretely."""

    def __init__(
        self,
        program: CProgram,
        step_budget: int = 200_000,
        symbolic_inputs: Optional[list[int]] = None,
    ) -> None:
        self.program = program
        self.memory: dict[int, int] = {}
        self._next_address = 1
        self._steps = step_budget
        #: values ``symbolic()`` draws, in program order; 0 once drained.
        #: Witness replay fills this from the counterexample model.
        self._symbolic_inputs = list(symbolic_inputs or [])
        self.fn_addresses: dict[str, int] = {}
        self._fn_by_address: dict[int, str] = {}
        for name in program.functions:
            address = self._alloc(1)
            self.fn_addresses[name] = address
            self._fn_by_address[address] = name
        self.global_env: dict[str, int] = {}
        self._init_globals()

    # -- memory ------------------------------------------------------------------

    def _alloc(self, size: int) -> int:
        base = self._next_address
        self._next_address += max(size, 1)
        for i in range(size):
            self.memory[base + i] = 0
        return base

    def _size_of(self, ctype: CType) -> int:
        if isinstance(ctype, StructType):
            return max(len(self.program.struct_def(ctype).fields), 1)
        return 1

    def _init_globals(self) -> None:
        for name, g in sorted(self.program.globals.items()):
            self.global_env[name] = self._alloc(self._size_of(g.typ))
        for name, g in sorted(self.program.globals.items()):
            if g.init is None:
                continue
            value = self._eval_const_init(g.init)
            self.memory[self.global_env[name]] = value

    def _eval_const_init(self, init: CExpr) -> int:
        if isinstance(init, IntLit):
            return init.value
        if isinstance(init, NullLit):
            return 0
        if isinstance(init, VarRef) and init.name in self.fn_addresses:
            return self.fn_addresses[init.name]
        raise CRuntimeError(f"unsupported static initializer {init!r}")

    # -- function calls -----------------------------------------------------------

    def call(self, name: str, args: Optional[list[int]] = None) -> int:
        fn = self.program.functions[name]
        if fn.body is None:
            raise CRuntimeError(f"call to extern {name} with no model")
        args = args or []
        env: dict[str, int] = {}
        local_types = {p.name: p.typ for p in fn.params}
        _collect(fn.body, local_types)
        for param, value in zip(fn.params, args):
            cell = self._alloc(self._size_of(param.typ))
            self.memory[cell] = value
            env[param.name] = cell
        for lname, ltype in local_types.items():
            if lname not in env:
                env[lname] = self._alloc(self._size_of(ltype))
        frame = _Frame(fn, env, TypeInfo(self.program, local_types))
        try:
            self._stmt(fn.body, frame)
        except _ReturnSignal as signal:
            return signal.value
        return 0

    # -- statements ---------------------------------------------------------------

    def _tick(self) -> None:
        self._steps -= 1
        if self._steps < 0:
            raise CStepBudgetExceeded()

    def _stmt(self, stmt: CStmt, frame: _Frame) -> None:
        self._tick()
        if isinstance(stmt, Block):
            for inner in stmt.stmts:
                self._stmt(inner, frame)
        elif isinstance(stmt, VarDecl):
            if stmt.init is not None:
                self.memory[frame.env[stmt.name]] = self._eval(stmt.init, frame)
        elif isinstance(stmt, ExprStmt):
            self._eval(stmt.expr, frame)
        elif isinstance(stmt, If):
            if self._eval(stmt.cond, frame) != 0:
                self._stmt(stmt.then, frame)
            elif stmt.els is not None:
                self._stmt(stmt.els, frame)
        elif isinstance(stmt, While):
            while self._eval(stmt.cond, frame) != 0:
                self._tick()
                self._stmt(stmt.body, frame)
        elif isinstance(stmt, Return):
            raise _ReturnSignal(
                self._eval(stmt.value, frame) if stmt.value is not None else 0
            )
        else:  # pragma: no cover - defensive
            raise CRuntimeError(f"unknown statement {stmt!r}")

    # -- expressions ----------------------------------------------------------------

    def _eval(self, expr: CExpr, frame: _Frame) -> int:
        self._tick()
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, NullLit):
            return 0
        if isinstance(expr, StrLit):
            return self._alloc(1)  # a fresh one-cell buffer, non-null
        if isinstance(expr, VarRef):
            if expr.name in frame.env or expr.name in self.global_env:
                return self.memory[self._lvalue_address(expr, frame)]
            if expr.name in self.fn_addresses:
                return self.fn_addresses[expr.name]
            raise CRuntimeError(f"unknown identifier {expr.name}")
        if isinstance(expr, Deref):
            return self.memory.get(self._checked_target(expr.ptr, frame), 0)
        if isinstance(expr, AddrOf):
            return self._lvalue_address(expr.target, frame)
        if isinstance(expr, Field):
            return self.memory.get(self._lvalue_address(expr, frame), 0)
        if isinstance(expr, Unary):
            value = self._eval(expr.operand, frame)
            return -value if expr.op == "-" else (1 if value == 0 else 0)
        if isinstance(expr, Binary):
            return self._binary(expr, frame)
        if isinstance(expr, Assign):
            value = self._eval(expr.rhs, frame)
            self.memory[self._lvalue_address(expr.lhs, frame)] = value
            return value
        if isinstance(expr, Call):
            return self._call_expr(expr, frame)
        if isinstance(expr, Malloc):
            return self._alloc(self._size_of(expr.typ))
        if isinstance(expr, Cast):
            return self._eval(expr.operand, frame)
        if isinstance(expr, Symbolic):
            if self._symbolic_inputs:
                return self._symbolic_inputs.pop(0)
            return 0
        if isinstance(expr, Assume):
            if self._eval(expr.cond, frame) == 0:
                raise CAssumeViolation(f"assumption false at {expr.cond!r}")
            return 1
        if isinstance(expr, Check):
            if self._eval(expr.cond, frame) == 0:
                raise CCheckFailure(f"check failed at {expr.cond!r}")
            return 1
        raise CRuntimeError(f"cannot evaluate {expr!r}")

    def _binary(self, expr: Binary, frame: _Frame) -> int:
        op = expr.op
        left = self._eval(expr.left, frame)
        # && and || short-circuit in C.
        if op == "&&":
            return 1 if left != 0 and self._eval(expr.right, frame) != 0 else 0
        if op == "||":
            return 1 if left != 0 or self._eval(expr.right, frame) != 0 else 0
        right = self._eval(expr.right, frame)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise CRuntimeError("division by zero")
            q = abs(left) // abs(right)
            return q if (left >= 0) == (right >= 0) else -q
        comparisons = {
            "==": left == right,
            "!=": left != right,
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
        }
        return 1 if comparisons[op] else 0

    def _lvalue_address(self, expr: CExpr, frame: _Frame) -> int:
        if isinstance(expr, VarRef):
            if expr.name in frame.env:
                return frame.env[expr.name]
            if expr.name in self.global_env:
                return self.global_env[expr.name]
            raise CRuntimeError(f"unknown identifier {expr.name}")
        if isinstance(expr, Deref):
            return self._checked_target(expr.ptr, frame)
        if isinstance(expr, Field):
            if expr.arrow:
                base = self._checked_target(expr.obj, frame)
                struct_type = frame.types.type_of(expr.obj)
                assert isinstance(struct_type, PtrType)
                struct = self.program.struct_def(struct_type.elem)
            else:
                base = self._lvalue_address(expr.obj, frame)
                struct = self.program.struct_def(frame.types.type_of(expr.obj))
            return base + struct.field_index(expr.name)
        raise CRuntimeError(f"not an lvalue: {expr!r}")

    def _checked_target(self, ptr_expr: CExpr, frame: _Frame) -> int:
        address = self._eval(ptr_expr, frame)
        if address == 0:
            raise CNullDereference(f"NULL dereference at {ptr_expr!r}")
        if address not in self.memory:
            raise CRuntimeError(f"wild pointer {address}")
        return address

    def _call_expr(self, expr: Call, frame: _Frame) -> int:
        args = [self._eval(a, frame) for a in expr.args]
        if isinstance(expr.fn, VarRef) and expr.fn.name in self.program.functions:
            return self.call(expr.fn.name, args)
        address = self._eval(expr.fn, frame)
        name = self._fn_by_address.get(address)
        if name is None:
            raise CRuntimeError(f"call through bad function pointer {address}")
        return self.call(name, args)


def _collect(stmt: CStmt, env: dict[str, CType]) -> None:
    if isinstance(stmt, VarDecl):
        env[stmt.name] = stmt.typ
    elif isinstance(stmt, Block):
        for inner in stmt.stmts:
            _collect(inner, env)
    elif isinstance(stmt, If):
        _collect(stmt.then, env)
        if stmt.els is not None:
            _collect(stmt.els, env)
    elif isinstance(stmt, While):
        _collect(stmt.body, env)


def run_function(
    program: CProgram, name: str, args: Optional[list[int]] = None
) -> int:
    """Convenience wrapper: interpret ``name`` with integer arguments."""
    return CInterpreter(program).call(name, args)
