"""vsftpd-like benchmark programs (paper Section 4.5).

We cannot push the real vsftpd-2.0.7 through a from-scratch C frontend,
so each of the paper's four case studies is transcribed into mini-C,
faithfully preserving the code shape the paper prints (function names,
the ``sysutil_free`` nonnull wrapper, the null-assignment patterns, the
function-pointer exit hook).  Each case is available *unannotated* (pure
qualifier inference — the false positive fires) and *annotated* (with
the paper's ``MIX(symbolic)`` / ``MIX(typed)`` placement — the false
positive is eliminated).

``combined_program(n_symbolic)`` merges the cases plus distractor
modules into one translation unit with the first ``n`` symbolic
annotations enabled; the timing benchmark (EXPERIMENTS.md, E2) sweeps
``n`` to reproduce the paper's cost-versus-blocks observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

# The common prelude: the one annotation the paper added to vsftpd.
_PRELUDE = """
void sysutil_free(void *nonnull p_ptr) MIX(typed);
"""


def _case1(annotated: bool) -> str:
    sym = "MIX(symbolic)" if annotated else ""
    return (
        _PRELUDE
        + f"""
struct sockaddr {{ int family; int port; }};

/* Case 1: flow and path insensitivity in sockaddr_clear. */
void sockaddr_clear(struct sockaddr **p_sock) {sym} {{
  if (*p_sock != NULL) {{
    sysutil_free(*p_sock);
    *p_sock = NULL;
  }}
}}

int main(void) {{
  struct sockaddr *p_addr = (struct sockaddr *) malloc(sizeof(struct sockaddr));
  sockaddr_clear(&p_addr);
  return 0;
}}
"""
    )


def _case2(annotated: bool) -> str:
    sym = "MIX(symbolic)" if annotated else ""
    return (
        _PRELUDE
        + f"""
struct mystr {{ char *p_buf; int len; }};

void str_alloc_text(struct mystr *p_str, char *p_src) MIX(typed) {{
  p_str->p_buf = p_src;
  p_str->len = 1;
}}

char *sysutil_next_dirent(int p_dirent) MIX(typed) {{
  if (p_dirent == 0) {{
    return NULL;
  }}
  return "dirent";
}}

/* Case 2: path and context insensitivity in str_next_dirent. */
void str_next_dirent(struct mystr *p_str, int d) {sym} {{
  char *p_filename = sysutil_next_dirent(d);
  if (p_filename != NULL) {{
    str_alloc_text(p_str, p_filename);
  }}
}}

void other_use(struct mystr *p_str) {{
  str_alloc_text(p_str, "hello");
  sysutil_free(p_str->p_buf);
}}

int main(void) {{
  struct mystr s;
  s.p_buf = "init";
  s.len = 0;
  str_next_dirent(&s, 1);
  other_use(&s);
  return 0;
}}
"""
    )


def _case3(annotated: bool) -> str:
    sym = "MIX(symbolic)" if annotated else ""
    return (
        _PRELUDE
        + f"""
struct sockaddr {{ int family; int port; }};
struct hostent {{ int h_addrtype; }};

char *tunable_pasv_address;

void die(char *p_text);   /* eventually calls a function pointer */

/* A well-behaved symbolic model of gethostbyname: only AF_INET (2) and
   AF_INET6 (10) results, as the paper's Case 3 describes. */
struct hostent *gethostbyname_model(char *p_name) {{
  struct hostent *hent = (struct hostent *) malloc(sizeof(struct hostent));
  if (p_name == NULL) {{
    hent->h_addrtype = 2;
  }} else {{
    hent->h_addrtype = 10;
  }}
  return hent;
}}

void sockaddr_clear(struct sockaddr **p_sock) {sym} {{
  if (*p_sock != NULL) {{
    sysutil_free(*p_sock);
    *p_sock = NULL;
  }}
}}

void sockaddr_alloc_ipv4(struct sockaddr **p_sock) {{
  *p_sock = (struct sockaddr *) malloc(sizeof(struct sockaddr));
  (*p_sock)->family = 2;
}}

void sockaddr_alloc_ipv6(struct sockaddr **p_sock) {{
  *p_sock = (struct sockaddr *) malloc(sizeof(struct sockaddr));
  (*p_sock)->family = 10;
}}

void dns_resolve(struct sockaddr **p_sock, char *p_name) {{
  struct hostent *hent = gethostbyname_model(p_name);
  sockaddr_clear(p_sock);
  if (hent->h_addrtype == 2) {{
    sockaddr_alloc_ipv4(p_sock);
  }} else {{
    if (hent->h_addrtype == 10) {{
      sockaddr_alloc_ipv6(p_sock);
    }} else {{
      die("gethostbyname(): neither IPv4 nor IPv6");
    }}
  }}
}}

/* Case 3: the null sources of main extracted into one symbolic block. */
void main_BLOCK(struct sockaddr **p_sock) {sym} {{
  *p_sock = NULL;
  dns_resolve(p_sock, tunable_pasv_address);
}}

int main(void) {{
  struct sockaddr *p_addr;
  main_BLOCK(&p_addr);
  sysutil_free(p_addr);
  return 0;
}}
"""
    )


def _case4(annotated: bool) -> str:
    typed = "MIX(typed)" if annotated else ""
    return (
        _PRELUDE
        + f"""
void (*s_exit_func)(void);
void exit_model(int code);

/* Case 4: the function-pointer call extracted into a typed block so the
   symbolic executor need not resolve a symbolic function pointer. */
void sysutil_exit_BLOCK(void) {typed} {{
  if (s_exit_func != NULL) {{
    s_exit_func();
  }}
}}

void sysutil_exit(int exit_code) {{
  sysutil_exit_BLOCK();
  exit_model(exit_code);
}}

void cleanup_session(int *p_state) MIX(symbolic) {{
  if (p_state != NULL) {{
    sysutil_free(p_state);
  }}
  sysutil_exit(1);
}}

int main(void) {{
  int *state = (int *) malloc(sizeof(int));
  cleanup_session(state);
  return 0;
}}
"""
    )


# Distractor modules: realistic clean code that pure inference should not
# warn on, giving the combined program more typed-region surface.
_DISTRACTORS = """
struct str_buf { char *p_data; int size; };

int vsf_count(int n) {
  int total = 0;
  int i = 0;
  while (i < n) {
    total = total + i;
    i = i + 1;
  }
  return total;
}

char *vsf_dup(char *src) {
  if (src == NULL) {
    return NULL;
  }
  return src;
}

void buf_init(struct str_buf *b) {
  b->p_data = "empty";
  b->size = 0;
}

int buf_use(void) {
  struct str_buf b;
  buf_init(&b);
  return b.size + vsf_count(3);
}
"""


@dataclass(frozen=True)
class Case:
    """One of the paper's case studies."""

    name: str
    title: str
    source: Callable[[bool], str]
    #: substring identifying the false positive in the unannotated run
    warning_marker: str


CASES: dict[str, Case] = {
    "case1": Case(
        "case1",
        "Flow and path insensitivity in sockaddr_clear",
        _case1,
        "sysutil_free",
    ),
    "case2": Case(
        "case2",
        "Path and context insensitivity in str_next_dirent",
        _case2,
        "sysutil_free",
    ),
    "case3": Case(
        "case3",
        "Flow- and path-insensitivity in dns_resolve and main",
        _case3,
        "sysutil_free",
    ),
    "case4": Case(
        "case4",
        "Helping symbolic execution with symbolic function pointers",
        _case4,
        "function pointer",
    ),
}


def combined_program(n_symbolic: int) -> str:
    """A vsftpd-like translation unit with ``n_symbolic`` in 0..2
    *independent* symbolic blocks enabled, each guarding a distinct
    sockaddr_clear-shaped false positive.

    Used by the timing/precision sweep (EXPERIMENTS.md, E2): the paper
    reports <1 s with no symbolic blocks, 5-25 s with one, ~60 s with two
    on vsftpd — cost grows with each block (translation, execution,
    fixpoint), while one false positive disappears per block.
    """
    if not 0 <= n_symbolic <= 2:
        raise ValueError("n_symbolic must be 0, 1, or 2")
    sym1 = "MIX(symbolic)" if n_symbolic >= 1 else ""
    sym2 = "MIX(symbolic)" if n_symbolic >= 2 else ""
    return (
        _PRELUDE
        + _DISTRACTORS
        + f"""
struct sockaddr {{ int family; int port; }};
struct mystr2 {{ char *p_buf; int len; }};

/* Block candidate 1: the Case 1 pattern on sockaddrs. */
void sockaddr_clear(struct sockaddr **p_sock) {sym1} {{
  if (*p_sock != NULL) {{
    sysutil_free(*p_sock);
    *p_sock = NULL;
  }}
}}

/* Block candidate 2: the same pattern, independently, on strings. */
void str_free(struct mystr2 **p_str) {sym2} {{
  if (*p_str != NULL) {{
    sysutil_free(*p_str);
    *p_str = NULL;
  }}
}}

void session_init(struct sockaddr **p_sock, struct mystr2 **p_str) {{
  *p_sock = (struct sockaddr *) malloc(sizeof(struct sockaddr));
  *p_str = (struct mystr2 *) malloc(sizeof(struct mystr2));
  (*p_str)->len = 0;
}}

int main(void) {{
  struct sockaddr *p_addr;
  struct mystr2 *p_text;
  int unused = buf_use();
  session_init(&p_addr, &p_text);
  sockaddr_clear(&p_addr);
  str_free(&p_text);
  return 0;
}}
"""
    )
