"""Crash-containment reports (trust ring 3).

When the per-block containment boundary in :mod:`repro.core.mix` or
:mod:`repro.mixy.driver` catches an unexpected exception, it degrades
the block and records what happened here: a JSON report with the
exception, the block source, the delta-debugged minimal source, and the
fault-injection schedule (if one was installed), so the crash can be
re-run offline.  Reports are content-addressed — the same crash on the
same source overwrites one file instead of accumulating — and write
failures are swallowed: the report is an aid, never a new crash source.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback
from typing import Optional

from repro.fsio import atomic_write
from repro.smt.service import FaultInjector


def record_crash(
    error: BaseException,
    phase: str,
    source: str,
    shrunk_source: str,
    crash_dir: str,
    injector: Optional[FaultInjector] = None,
) -> Optional[str]:
    """Write one crash report; returns its path, or None if it could not
    be written (the containment path must stay exception-free)."""
    report = {
        "phase": phase,
        "exception_type": type(error).__name__,
        "message": str(error),
        "traceback": traceback.format_exc(),
        "source": source,
        "shrunk_source": shrunk_source,
        "fault_injection": injector.describe() if injector is not None else None,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    digest = hashlib.sha1(
        json.dumps(
            [phase, report["exception_type"], source], sort_keys=True
        ).encode("utf-8")
    ).hexdigest()[:12]
    path = os.path.join(crash_dir, f"crash-{digest}.json")
    try:
        os.makedirs(crash_dir, exist_ok=True)
        # Atomic: a run killed mid-report must not leave a torn JSON file
        # for the next triage pass to choke on.
        with atomic_write(path) as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        return None
    return path
