"""repro — a reproduction of *Mixing Type Checking and Symbolic
Execution* (Khoo, Chang, Foster; PLDI 2010).

Top-level map (see README.md and docs/ARCHITECTURE.md):

- :mod:`repro.smt` — the SMT solver substrate (substitute for STP);
- :mod:`repro.lang` — the MIX source language, parser, and concrete
  big-step semantics;
- :mod:`repro.typecheck` — the off-the-shelf type checker;
- :mod:`repro.symexec` — the off-the-shelf symbolic executor (plus the
  concolic driver and the executable soundness relations);
- :mod:`repro.core` — MIX itself: the mix rules, the analysis driver,
  and automatic block placement;
- :mod:`repro.quals` — the §2 sign-qualifier system mixed with symbolic
  execution;
- :mod:`repro.mixy` — MIXY, the C prototype: mini-C frontend, null/
  nonnull qualifier inference, Andersen points-to, C symbolic executor,
  the §4.1–4.4 switching machinery, and the vsftpd-like corpora;
- :mod:`repro.cli` — command-line front ends.

Quick start::

    from repro.core import analyze_source
    report = analyze_source('{s if true then {t 5 t} else {t "x" + 1 t} s}')
    assert report.ok
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
