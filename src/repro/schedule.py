"""Trace-driven query scheduling: waves, portfolios, and learned hints.

PR 4's parallel engine fans a fixpoint round's frontier out one block
per worker task, first-come-first-served.  The trace layer (PR 5) shows
where that is wasteful: related blocks re-derive each other's cache
entries in separate workers, hot blocks get no more solver muscle than
trivial ones, and every round re-speculates blocks whose deltas stopped
mattering rounds ago.  This module turns that trace evidence into
dispatch decisions; :class:`repro.parallel.ParallelEngine` executes them.

Three cooperating mechanisms (``--schedule {fifo,waves,portfolio}``):

**Wave batching** (``waves`` and up).  The independent tasks of one
round — MIXY frontier blocks, or the MIX checker's outcome queries —
are clustered into at most ``--jobs`` *waves* by feature similarity
(referenced globals + callees for blocks; shared wire-encoded conjunct
roots for query groups).  A whole wave is dispatched as one worker
task, so a worker warms its forked cache snapshot once and amortizes it
across every related task in the wave, instead of each worker
rediscovering the shared conjuncts alone.  Wave membership and order
are a pure function of the inputs — the plan is deterministic.

**Portfolio racing** (``portfolio``).  Blocks marked hot (top solver
time in a prior run's hints, or every first-seen block when no hints
exist yet) are raced: 2-3 sibling workers run the same block under
different solver strategies — ``simplify`` (rewrite conjuncts first),
``intfirst`` (try the integer engine directly, skipping the CDCL
encoding for pure linear conjunctions), ``flip`` (inverted branching
phase in the SAT core) — and the first finisher's delta is kept.
Losers are cancelled cooperatively (see ``SatCancelled``); the winning
strategy is recorded and, via the hint file, dispatched directly on the
next run instead of re-raced.  Strategies only ever run in speculative
workers: the authoritative serial pass always uses the default solver,
so ``--jobs N`` output remains byte-identical to ``--jobs 1`` by
construction no matter who wins a race.

**Learned hints** (``.repro-sched.json``, schema v1).  ``repro
trace-report --emit-hints FILE`` distills a trace digest into a compact
per-block hint file keyed on *block content hash* — stable across runs
and across reorderings of the surrounding program, stale entries simply
never match.  Hints carry: hotness rank (wave priority), cache-tier
probe order (swap the subset/superset scans when the superset tier
historically answered more often — the two tiers are mutually
exclusive, so the swap is verdict- and cache-state-identical), the
winning portfolio strategy, and a ``cold_only`` flag for blocks whose
later-round speculation produced negligible new cache entries (the
scheduler then speculates them in their first round only).  The file is
the first brick of the roadmap's persistent cross-run store.

Hint-file schema (version 1)::

    {"version": 1,
     "blocks": {"<chash>": {"name": str, "rank": int,
                            "solver_seconds": float, "queries": int,
                            "tier_order": ["superset", "subset"] | null,
                            "strategy": "intfirst" | ... | null,
                            "cold_only": bool}},
     "hot": ["<chash>", ...]}

Unknown versions, unparseable JSON, or entries whose hash matches no
current block are ignored gracefully: hints are an accelerator, never a
correctness input.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

#: Dispatch modes, in increasing order of machinery.
SCHEDULE_MODES = ("fifo", "waves", "portfolio")

#: Solver strategy variants a portfolio race runs (workers only; the
#: authoritative pass always solves with the default strategy).
RACE_STRATEGIES = ("simplify", "intfirst", "flip")

#: All strategies a hint file may name (default = no variant).
STRATEGIES = ("default",) + RACE_STRATEGIES

#: Strategies whose solves are strictly cheaper than the default CDCL
#: path (not merely differently ordered): only these justify re-
#: speculating a block on hardware where workers cannot overlap the
#: authoritative pass ("strategy arbitrage" — see Scheduler._should_skip).
CHEAP_STRATEGIES = ("intfirst",)

#: Default hint-file name (cwd-relative), per the issue spec.
DEFAULT_HINTS_FILE = ".repro-sched.json"

HINTS_VERSION = 1

#: How many top-solver-time blocks a hint file marks hot.
HOT_TOP_N = 8

#: Live convergence feedback: a block whose previous speculative delta
#: imported at most this many new cache entries is not re-speculated.
CONVERGED_IMPORTS = 4

#: Minimum Jaccard similarity for a task to join an existing wave
#: rather than opening a new one (while wave slots remain).
WAVE_SIMILARITY = 0.25

#: ``cold_only``: later-round speculation below this fraction of the
#: block's first-round speculative solver time is considered noise.
COLD_ONLY_FRACTION = 0.25


def block_content_hash(program, name: str, context: object = None) -> str:
    """A stable identity for one function's *content*: the SHA-1 of its
    pretty-printed text.  The pretty-printer renders from the parsed
    AST, so the hash is normalized by construction — whitespace and
    comment edits to the source cannot retire hints or store entries
    (pinned by ``tests/test_schedule.py``).  It survives renames of
    other functions, global reorderings, and annotation edits
    elsewhere; any edit to the function itself retires its hints (they
    simply stop matching).

    ``context``, when given, widens the key with a stable ``repr`` of
    the block's typed calling context — the cross-run block store keys
    results on (content, context) so that one function body analyzed
    under two qualifier states gets two entries (see repro.store)."""
    from repro.mixy.c.pretty import function_text  # local: layering

    fn = program.functions[name]
    digest = hashlib.sha1(function_text(fn).encode("utf-8"))
    if context is not None:
        digest.update(b"\x00")
        digest.update(repr(context).encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass
class BlockHint:
    """Per-block guidance distilled from a prior run's trace digest."""

    name: str = ""
    rank: int = 0
    solver_seconds: float = 0.0
    queries: int = 0
    #: Cache-tier probe order for the subset/superset scans, or None
    #: for the built-in default.  Only these two tiers are reorderable:
    #: they are mutually exclusive, so swapping them is observationally
    #: identical — cheaper when history says the second one answers.
    tier_order: Optional[tuple[str, str]] = None
    #: The portfolio strategy that won this block's race, if any.
    strategy: Optional[str] = None
    #: Later-round speculation was negligible: speculate cold only.
    cold_only: bool = False

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "rank": self.rank,
            "solver_seconds": round(self.solver_seconds, 6),
            "queries": self.queries,
            "tier_order": list(self.tier_order) if self.tier_order else None,
            "strategy": self.strategy,
            "cold_only": self.cold_only,
        }


class ScheduleHints:
    """The parsed hint file: per-chash block hints plus the hot set.

    Robustness contract: :meth:`load` never raises on bad input — a
    missing file, unparseable JSON, a foreign schema version, or
    mistyped entries all degrade to (partially) empty hints, with the
    reason recorded in :attr:`note` for ``-v`` style surfacing."""

    def __init__(
        self,
        blocks: Optional[Mapping[str, BlockHint]] = None,
        hot: Sequence[str] = (),
    ) -> None:
        self.blocks: dict[str, BlockHint] = dict(blocks or {})
        self.hot: tuple[str, ...] = tuple(hot)
        self.note: Optional[str] = None

    def __len__(self) -> int:
        return len(self.blocks)

    def get(self, chash: Optional[str]) -> Optional[BlockHint]:
        if not chash:
            return None
        return self.blocks.get(chash)

    def is_hot(self, chash: Optional[str]) -> bool:
        return bool(chash) and chash in self.hot

    def as_dict(self) -> dict:
        return {
            "version": HINTS_VERSION,
            "blocks": {ch: hint.as_dict() for ch, hint in sorted(self.blocks.items())},
            "hot": list(self.hot),
        }

    def save(self, path: str) -> None:
        from repro.fsio import atomic_write  # local: layering

        # Atomic: a half-written hint file would be "corrupt" to the
        # next run — degraded gracefully, but the hints would be lost.
        with atomic_write(path) as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "ScheduleHints":
        hints = cls()
        try:
            with open(path, encoding="utf-8") as fh:
                raw = json.load(fh)
        except FileNotFoundError:
            hints.note = f"hint file {path} not found; running unhinted"
            return hints
        except (OSError, json.JSONDecodeError) as error:
            hints.note = f"ignoring corrupt hint file {path}: {error}"
            return hints
        if not isinstance(raw, dict) or raw.get("version") != HINTS_VERSION:
            hints.note = (
                f"ignoring hint file {path}: unsupported version "
                f"{raw.get('version') if isinstance(raw, dict) else raw!r}"
            )
            return hints
        blocks = raw.get("blocks")
        if isinstance(blocks, dict):
            for chash, entry in blocks.items():
                hint = cls._parse_block(entry)
                if hint is not None:
                    hints.blocks[str(chash)] = hint
        hot = raw.get("hot")
        if isinstance(hot, list):
            hints.hot = tuple(str(ch) for ch in hot)
        return hints

    @staticmethod
    def _parse_block(entry: object) -> Optional[BlockHint]:
        if not isinstance(entry, dict):
            return None
        tier_order = entry.get("tier_order")
        if tier_order is not None:
            if (
                not isinstance(tier_order, list)
                or sorted(tier_order) != ["subset", "superset"]
            ):
                tier_order = None  # mistyped: fall back to default order
            else:
                tier_order = tuple(tier_order)
        strategy = entry.get("strategy")
        if strategy is not None and strategy not in STRATEGIES:
            strategy = None  # unknown strategy name: ignore, don't fail
        try:
            return BlockHint(
                name=str(entry.get("name", "")),
                rank=int(entry.get("rank", 0)),
                solver_seconds=float(entry.get("solver_seconds", 0.0)),
                queries=int(entry.get("queries", 0)),
                tier_order=tier_order,
                strategy=strategy,
                cold_only=bool(entry.get("cold_only", False)),
            )
        except (TypeError, ValueError):
            return None


# ---------------------------------------------------------------------------
# Round plans
# ---------------------------------------------------------------------------


@dataclass
class RacePlan:
    """One portfolio race: the same block under each listed strategy."""

    name: str
    chash: str
    strategies: tuple[str, ...] = RACE_STRATEGIES


@dataclass
class RoundPlan:
    """What the parallel engine should dispatch for one fixpoint round."""

    #: Each wave is dispatched as one worker task, in list order (the
    #: merge happens in the same order, keeping the cache deterministic).
    waves: list[tuple[str, ...]] = field(default_factory=list)
    #: Per-wave solver strategy.  Waves are strategy-homogeneous: blocks
    #: are grouped by learned strategy before clustering, so no block is
    #: silently demoted to "default" by its wave-mates.
    wave_strategies: list[str] = field(default_factory=list)
    races: list[RacePlan] = field(default_factory=list)
    #: Blocks not speculated this round (converged / cold_only).
    skipped: tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.waves and not self.races


def _jaccard(a: frozenset, b: set) -> float:
    if not a or not b:
        return 0.0
    inter = len(a & b)
    if not inter:
        return 0.0
    return inter / (len(a) + len(b) - inter)


class Scheduler:
    """Turns per-round task lists into :class:`RoundPlan` dispatches.

    One scheduler lives per analysis run (created next to the
    :class:`~repro.parallel.ParallelEngine` when ``--jobs N`` with a
    non-fifo ``--schedule``).  It is stateful across rounds: it tracks
    which blocks have been speculated, how much their last delta
    actually imported (live convergence feedback), which races have run
    and who won."""

    def __init__(
        self,
        mode: str = "fifo",
        jobs: int = 1,
        hints: Optional[ScheduleHints] = None,
        cores: Optional[int] = None,
    ) -> None:
        if mode not in SCHEDULE_MODES:
            raise ValueError(
                f"unknown schedule mode {mode!r}; expected one of {SCHEDULE_MODES}"
            )
        self.mode = mode
        self.jobs = max(1, jobs)
        self.hints = hints if hints is not None else ScheduleHints()
        #: Hardware parallelism actually available.  Speculation pays its
        #: way three different ways: *overlap* (workers solve while the
        #: serial pass runs — needs idle cores), *cache structure*
        #: (block-deterministic cold warming — works even time-sliced on
        #: one core), and *strategy arbitrage* (a learned cheap strategy
        #: makes worker solves cheaper than the authoritative solves
        #: they pre-seed).  Later-round re-speculation has no cold-cache
        #: benefit, so on a host that cannot overlap (< 2 cores) it runs
        #: only for blocks with a learned non-default strategy.  The
        #: pool is also sized to this (see ParallelEngine).
        self.cores = cores if cores is not None else (os.cpu_count() or 1)
        #: Waves a round may open: one per worker that can actually run
        #: concurrently.  More waves than that is pure per-task overhead
        #: (baseline scan, delta encode, sidecar flush) — on a 1-core
        #: host the whole round folds into one wave per strategy and the
        #: lone worker still amortizes its snapshot across every member.
        self.wave_slots = max(1, min(self.jobs, self.cores))
        #: Blocks fanned out at least once (by name).
        self._speculated: set[str] = set()
        #: name -> cache entries imported from its latest delta.
        self._last_imported: dict[str, int] = {}
        #: Blocks already raced this run (never re-race).
        self._raced: set[str] = set()
        #: name -> winning strategy, recorded by the parallel engine.
        self.race_winners: dict[str, str] = {}

    # -- MIXY: block scheduling -------------------------------------------

    def plan_mixy_round(
        self,
        names: Sequence[str],
        features: Mapping[str, frozenset],
        hashes: Mapping[str, str],
    ) -> RoundPlan:
        """Plan one frontier round.  ``names`` arrive in serial (sorted)
        order; the plan is a pure function of the arguments plus the
        scheduler's accumulated state, so identical runs produce
        identical plans."""
        assert self.mode != "fifo", "fifo rounds bypass the scheduler"
        skipped: list[str] = []
        active: list[str] = []
        for name in names:
            if self._should_skip(name, hashes.get(name)):
                skipped.append(name)
            else:
                active.append(name)

        races: list[RacePlan] = []
        if self.mode == "portfolio":
            remaining: list[str] = []
            for name in active:
                chash = hashes.get(name, "")
                if self._should_race(name, chash):
                    races.append(RacePlan(name, chash))
                    self._raced.add(name)
                else:
                    remaining.append(name)
            active = remaining

        # Waves are strategy-homogeneous: a worker's service has one
        # strategy knob at a time, and mixing a learned-intfirst block
        # into a default wave would silently demote it.  Group first,
        # cluster within each group, then prioritize across all waves.
        groups: dict[str, list[str]] = {}
        for name in active:
            groups.setdefault(
                self._block_strategy(name, hashes.get(name)), []
            ).append(name)
        paired: list[tuple[tuple[str, ...], str]] = []
        for strategy in sorted(groups):
            for wave in self._form_waves(groups[strategy], features):
                paired.append((wave, strategy))
        paired = self._prioritize(paired, hashes)
        waves = [wave for wave, _ in paired]
        strategies = [strategy for _, strategy in paired]
        for name in active:
            self._speculated.add(name)
        for race in races:
            self._speculated.add(race.name)
        return RoundPlan(
            waves=waves,
            wave_strategies=strategies,
            races=races,
            skipped=tuple(skipped),
        )

    def _should_skip(self, name: str, chash: Optional[str]) -> bool:
        if name not in self._speculated:
            return False  # never skip a block's first speculation
        if self._last_imported.get(name, 1 << 30) <= CONVERGED_IMPORTS:
            return True  # live feedback: its deltas stopped mattering
        hint = self.hints.get(chash)
        won = self.race_winners.get(name)
        if won is None and hint is not None:
            won = hint.strategy
        # A learned cheap strategy changes the economics of later-round
        # speculation: the worker's (e.g. intfirst) solves cost less
        # than the authoritative CDCL solves whose verdicts they
        # pre-seed, so re-speculating pays even with zero overlap.
        # Without one, later rounds only pay through overlap, which
        # needs idle cores.
        arbitrage = won in CHEAP_STRATEGIES
        if self.cores < 2 and not arbitrage:
            return True  # no overlap possible: cold speculation only
        if hint is not None and hint.cold_only and not arbitrage:
            return True
        return False

    def _should_race(self, name: str, chash: str) -> bool:
        if name in self._raced or name in self._speculated:
            return False  # race only on first speculation
        hint = self.hints.get(chash)
        if hint is not None and hint.strategy is not None:
            return False  # already learned: dispatch the winner directly
        if self.hints.blocks or self.hints.hot:
            return self.hints.is_hot(chash)
        return True  # no hints at all: every first-seen block learns

    def _form_waves(
        self, names: Sequence[str], features: Mapping[str, frozenset]
    ) -> list[tuple[str, ...]]:
        """Greedy deterministic clustering into at most ``wave_slots``
        waves.

        Processing order is the (already sorted) input order; each task
        joins the most similar existing wave when similarity clears
        :data:`WAVE_SIMILARITY`, else opens a new wave while slots
        remain, else joins the best (or emptiest) wave."""
        slots = self.wave_slots
        waves: list[list[str]] = []
        wave_feats: list[set] = []
        for name in names:
            feats = features.get(name, frozenset())
            best, best_sim = -1, 0.0
            for i, wf in enumerate(wave_feats):
                sim = _jaccard(feats, wf)
                if sim > best_sim:
                    best, best_sim = i, sim
            if best >= 0 and best_sim >= WAVE_SIMILARITY:
                waves[best].append(name)
                wave_feats[best] |= feats
            elif len(waves) < slots:
                waves.append([name])
                wave_feats.append(set(feats))
            elif best >= 0:
                waves[best].append(name)
                wave_feats[best] |= feats
            else:
                i = min(range(len(waves)), key=lambda j: (len(waves[j]), j))
                waves[i].append(name)
                wave_feats[i] |= feats
        return [tuple(w) for w in waves]

    def _prioritize(
        self,
        paired: list[tuple[tuple[str, ...], str]],
        hashes: Mapping[str, str],
    ) -> list[tuple[tuple[str, ...], str]]:
        """Dispatch (and merge) hot waves first: their workers get the
        longest overlap with the rest of the round.  Operates on
        (wave, strategy) pairs so priority never splits a pairing."""

        def rank(pair: tuple[tuple[str, ...], str]) -> tuple[int, str]:
            wave, _ = pair
            best = 1 << 30
            for name in wave:
                hint = self.hints.get(hashes.get(name))
                if hint is not None:
                    best = min(best, hint.rank)
            return (best, wave[0])

        return sorted(paired, key=rank)

    def _block_strategy(self, name: str, chash: Optional[str]) -> str:
        """The solver strategy a block's speculation should run: this
        run's race winner, else the hint file's, else the default."""
        if self.mode != "portfolio":
            return "default"
        won = self.race_winners.get(name)
        if won is None:
            hint = self.hints.get(chash)
            won = hint.strategy if hint is not None else None
        return won or "default"

    # -- feedback from the parallel engine --------------------------------

    def note_result(self, names: Sequence[str], imported: int) -> None:
        """Record how many cache entries a wave's delta actually added
        (attributed to every member: a wave ships one merged delta)."""
        for name in names:
            self._last_imported[name] = imported

    def note_winner(self, name: str, strategy: str) -> None:
        self.race_winners[name] = strategy

    # -- per-block lookups (serial pass + workers) -------------------------

    def tier_order_for(self, chash: Optional[str]) -> tuple[str, str]:
        hint = self.hints.get(chash)
        if hint is not None and hint.tier_order is not None:
            return hint.tier_order
        return ("subset", "superset")

    # -- MIX: query-group waves --------------------------------------------

    def plan_query_waves(
        self,
        positions: Sequence[tuple[int, ...]],
        roots: Sequence[int],
    ) -> list[tuple[int, ...]]:
        """Cluster MIX outcome-query groups into waves by *shared
        conjunct* similarity.  ``roots[i]`` is the wire node id of flat
        conjunct ``i`` (``to_wire_many`` interns shared structure, so
        two groups sharing a conjunct share its node id); each group's
        feature set is its conjunct node ids.  Returns waves of group
        indices; order and membership are deterministic."""
        features = {
            g: frozenset(roots[p] for p in group)
            for g, group in enumerate(positions)
        }
        names = list(range(len(positions)))
        waves: list[list[int]] = []
        wave_feats: list[set] = []
        for g in names:
            feats = features[g]
            best, best_sim = -1, 0.0
            for i, wf in enumerate(wave_feats):
                sim = _jaccard(feats, wf)
                if sim > best_sim:
                    best, best_sim = i, sim
            if best >= 0 and best_sim >= WAVE_SIMILARITY:
                waves[best].append(g)
                wave_feats[best] |= feats
            elif len(waves) < self.wave_slots:
                waves.append([g])
                wave_feats.append(set(feats))
            elif best >= 0:
                waves[best].append(g)
                wave_feats[best] |= feats
            else:
                i = min(range(len(waves)), key=lambda j: (len(waves[j]), j))
                waves[i].append(g)
                wave_feats[i] |= feats
        return [tuple(w) for w in waves]


def make_scheduler(config) -> Optional[Scheduler]:
    """The scheduler for a driver config (``jobs`` / ``schedule`` /
    ``sched_hints`` attributes — both MixConfig and MixyConfig qualify).
    Validates the mode even when it won't be used; returns None when no
    scheduling applies (serial runs and fifo mode keep PR 4's exact
    dispatch path).  A hint file that failed to load degrades to
    unhinted with a one-line stderr note."""
    import sys

    mode = getattr(config, "schedule", "fifo") or "fifo"
    if mode not in SCHEDULE_MODES:
        raise ValueError(
            f"unknown schedule mode {mode!r}; expected one of {SCHEDULE_MODES}"
        )
    if config.jobs <= 1 or mode == "fifo":
        return None
    hints = None
    if config.sched_hints:
        hints = ScheduleHints.load(config.sched_hints)
        if hints.note:
            print(f"repro: {hints.note}", file=sys.stderr)
    return Scheduler(mode, config.jobs, hints)


# ---------------------------------------------------------------------------
# Hint emission (``repro trace-report --emit-hints``)
# ---------------------------------------------------------------------------


def build_hints(digest: Mapping) -> ScheduleHints:
    """Distill a trace digest (:func:`repro.trace.aggregate`) into
    :class:`ScheduleHints`.  Blocks without a recorded content hash
    (serial runs don't stamp one) are skipped — hints only ever key on
    content, never on position or name."""
    hints = ScheduleHints()
    rows = [b for b in digest.get("blocks", ()) if b.get("chash")]
    rows.sort(
        key=lambda b: (
            -(b.get("solver_seconds", 0.0) + b.get("spec_solver_seconds", 0.0)),
            b["name"],
        )
    )
    winners = digest.get("scheduler", {}).get("race_winners", {})
    hot: list[str] = []
    for rank, row in enumerate(rows):
        chash = row["chash"]
        solver_seconds = row.get("solver_seconds", 0.0) + row.get(
            "spec_solver_seconds", 0.0
        )
        tiers = row.get("tiers", {})
        tier_order: Optional[tuple[str, str]] = None
        if tiers.get("superset", 0) > tiers.get("subset", 0):
            tier_order = ("superset", "subset")
        cold_only = False
        spec_first = row.get("spec_first_solver_seconds", 0.0)
        spec_later = row.get("spec_later_solver_seconds", 0.0)
        if row.get("spec_runs", 0) > 1 and spec_later <= max(
            spec_first * COLD_ONLY_FRACTION, 1e-9
        ):
            cold_only = True
        strategy = winners.get(row["name"])
        if strategy not in STRATEGIES:
            strategy = None
        hints.blocks[chash] = BlockHint(
            name=row["name"],
            rank=rank,
            solver_seconds=solver_seconds,
            queries=row.get("queries", 0) + row.get("spec_queries", 0),
            tier_order=tier_order,
            strategy=strategy,
            cold_only=cold_only,
        )
        if len(hot) < HOT_TOP_N and solver_seconds > 0.0:
            hot.append(chash)
    hints.hot = tuple(hot)
    return hints


def emit_hints(digest: Mapping, path: str) -> ScheduleHints:
    """Build hints from ``digest`` and write them to ``path``."""
    hints = build_hints(digest)
    hints.save(path)
    return hints
