"""Phase-labelled cProfile support for the CLI's ``--profile N`` flag.

A :class:`PhaseProfiler` wraps each labelled phase of a run (parse,
analysis, reporting) in its own ``cProfile.Profile`` and prints the top
``N`` functions by cumulative time per phase.  Phases rather than one
flat profile because the analyzers interleave qualifier inference,
symbolic execution, and solving — a per-phase breakdown answers "where
did the time go" directly instead of burying it in one merged table.

Profiles are collected only when enabled, so a disabled profiler (the
default) adds a single attribute check per phase and nothing else.

Under ``--jobs N`` the speculative workers run in forked processes
whose in-memory profiles die with them.  :meth:`PhaseProfiler.
enable_workers` arms per-*task* sidecar profiles instead: the worker
wraps each task body in :func:`worker_task_profile`, which dumps raw
``cProfile`` state to ``<prefix>.prof.<pid>.<seq>`` (mirroring the
tracer's per-worker sidecar files), and the parent's :meth:`report`
merges every sidecar into one extra "speculative workers" table and
deletes the files.
"""

from __future__ import annotations

import cProfile
import glob
import io
import os
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, TextIO

#: Sidecar path prefix for worker-task profiles.  Set in the parent by
#: ``PhaseProfiler.enable_workers`` *before* the pool forks, inherited
#: by every worker; None keeps ``worker_task_profile`` a no-op.
_WORKER_PREFIX: Optional[str] = None

#: Per-process dump counter: one worker runs many tasks, each dumping
#: its own ``.prof.<pid>.<seq>`` file (cheap, and merge-order free).
_TASK_SEQ = 0


@contextmanager
def worker_task_profile() -> Iterator[None]:
    """Profile one worker task into a sidecar file (no-op unless the
    parent armed worker profiling).  Dump failures are swallowed: a
    profile is diagnostics, never worth failing a speculation over."""
    global _TASK_SEQ
    if _WORKER_PREFIX is None:
        yield
        return
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield
    finally:
        profile.disable()
        _TASK_SEQ += 1
        try:
            profile.dump_stats(f"{_WORKER_PREFIX}.prof.{os.getpid()}.{_TASK_SEQ}")
        except OSError:
            pass


class PhaseProfiler:
    """Collects one cProfile per labelled phase; reports top-N rows.

    ``top`` of ``None`` (or 0) disables collection entirely — ``phase``
    becomes a no-op context manager and ``report`` prints nothing.
    """

    def __init__(self, top: Optional[int]) -> None:
        self.top = top if top else None
        self._phases: list[tuple[str, cProfile.Profile]] = []
        self._worker_prefix: Optional[str] = None

    @property
    def enabled(self) -> bool:
        return self.top is not None

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Profile everything run inside the ``with`` block under ``name``."""
        if not self.enabled:
            yield
            return
        profile = cProfile.Profile()
        profile.enable()
        try:
            yield
        finally:
            profile.disable()
            self._phases.append((name, profile))

    def enable_workers(self, prefix: str) -> None:
        """Arm worker-side task profiling: forked workers will dump
        ``<prefix>.prof.<pid>.<seq>`` sidecars that :meth:`report`
        merges.  Call before any pool is created (workers inherit the
        prefix through fork)."""
        global _WORKER_PREFIX
        if not self.enabled:
            return
        self._worker_prefix = prefix
        _WORKER_PREFIX = prefix

    def warn_if_parallel(self, jobs: Optional[int], stream: TextIO = sys.stderr) -> None:
        """``--profile`` + ``--jobs N``: say plainly what the numbers
        cover.  With worker sidecars armed, workers *are* profiled (into
        a separate merged table); without, only the serial pass is."""
        if not (self.enabled and jobs is not None and jobs > 1):
            return
        if self._worker_prefix is not None:
            print(
                f"profile: --jobs {jobs} worker tasks are profiled into "
                f"{self._worker_prefix}.prof.* sidecars, merged below as "
                "'speculative workers' (wall times overlap the serial pass)",
                file=stream,
            )
        else:
            print(
                f"profile: --jobs {jobs} worker processes are not profiled "
                "(cProfile state is lost in forked children); the numbers "
                "below cover the authoritative serial pass only",
                file=stream,
            )

    def _merged_worker_stats(self, stream: TextIO) -> Optional[pstats.Stats]:
        """Merge (and delete) every worker sidecar dumped under the
        armed prefix; None when no sidecar arrived or none parsed."""
        if self._worker_prefix is None:
            return None
        paths = sorted(glob.glob(glob.escape(self._worker_prefix) + ".prof.*"))
        merged: Optional[pstats.Stats] = None
        for path in paths:
            try:
                if merged is None:
                    merged = pstats.Stats(path, stream=stream)
                else:
                    merged.add(path)
            except Exception:
                # A worker died mid-dump: a truncated sidecar is noise,
                # not a reason to lose the rest of the table.
                pass
            try:
                os.unlink(path)
            except OSError:
                pass
        return merged

    def report(self, stream: TextIO = sys.stderr) -> None:
        """Print each phase's top-N functions by cumulative time, then
        the merged speculative-worker table when sidecars were armed."""
        if not self.enabled:
            return
        for name, profile in self._phases:
            buffer = io.StringIO()
            stats = pstats.Stats(profile, stream=buffer)
            stats.sort_stats(pstats.SortKey.CUMULATIVE)
            stats.print_stats(self.top)
            print(f"== profile: {name} (top {self.top} by cumulative time) ==",
                  file=stream)
            # pstats prints a preamble (call counts, sort order) worth
            # keeping; strip only the leading blank lines.
            print(buffer.getvalue().strip("\n"), file=stream)
        worker_stats = self._merged_worker_stats(stream)
        if worker_stats is not None:
            buffer = io.StringIO()
            worker_stats.stream = buffer
            worker_stats.sort_stats(pstats.SortKey.CUMULATIVE)
            worker_stats.print_stats(self.top)
            print(
                f"== profile: speculative workers (top {self.top} by "
                "cumulative time, merged across worker tasks) ==",
                file=stream,
            )
            print(buffer.getvalue().strip("\n"), file=stream)
