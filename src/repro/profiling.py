"""Phase-labelled cProfile support for the CLI's ``--profile N`` flag.

A :class:`PhaseProfiler` wraps each labelled phase of a run (parse,
analysis, reporting) in its own ``cProfile.Profile`` and prints the top
``N`` functions by cumulative time per phase.  Phases rather than one
flat profile because the analyzers interleave qualifier inference,
symbolic execution, and solving — a per-phase breakdown answers "where
did the time go" directly instead of burying it in one merged table.

Profiles are collected only when enabled, so a disabled profiler (the
default) adds a single attribute check per phase and nothing else.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, TextIO


class PhaseProfiler:
    """Collects one cProfile per labelled phase; reports top-N rows.

    ``top`` of ``None`` (or 0) disables collection entirely — ``phase``
    becomes a no-op context manager and ``report`` prints nothing.
    """

    def __init__(self, top: Optional[int]) -> None:
        self.top = top if top else None
        self._phases: list[tuple[str, cProfile.Profile]] = []

    @property
    def enabled(self) -> bool:
        return self.top is not None

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Profile everything run inside the ``with`` block under ``name``."""
        if not self.enabled:
            yield
            return
        profile = cProfile.Profile()
        profile.enable()
        try:
            yield
        finally:
            profile.disable()
            self._phases.append((name, profile))

    def warn_if_parallel(self, jobs: Optional[int], stream: TextIO = sys.stderr) -> None:
        """``--profile`` + ``--jobs N``: cProfile state dies with the
        forked workers, so say plainly what the numbers do (and do not)
        cover instead of silently dropping the worker-side profiles."""
        if self.enabled and jobs is not None and jobs > 1:
            print(
                f"profile: --jobs {jobs} worker processes are not profiled "
                "(cProfile state is lost in forked children); the numbers "
                "below cover the authoritative serial pass only",
                file=stream,
            )

    def report(self, stream: TextIO = sys.stderr) -> None:
        """Print each phase's top-N functions by cumulative time."""
        if not self.enabled:
            return
        for name, profile in self._phases:
            buffer = io.StringIO()
            stats = pstats.Stats(profile, stream=buffer)
            stats.sort_stats(pstats.SortKey.CUMULATIVE)
            stats.print_stats(self.top)
            print(f"== profile: {name} (top {self.top} by cumulative time) ==",
                  file=stream)
            # pstats prints a preamble (call counts, sort order) worth
            # keeping; strip only the leading blank lines.
            print(buffer.getvalue().strip("\n"), file=stream)
