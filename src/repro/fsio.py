"""Durable file I/O for analysis artifacts.

Everything the tower writes to disk — crash repros, scheduling hints,
the cross-run analysis store — must survive the process dying at any
instruction: these files are read back by *later* runs, and a torn or
half-written artifact would either crash that run or (worse) silently
feed it garbage.  :func:`atomic_write` is the one way to write them:
the content lands in a temporary file in the destination directory and
is moved into place with :func:`os.replace`, which POSIX guarantees is
atomic on a single filesystem.  A reader therefore sees either the old
complete file or the new complete file, never a prefix.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from typing import IO, Iterator, Union


@contextmanager
def atomic_write(
    path: Union[str, os.PathLike], binary: bool = False
) -> Iterator[IO]:
    """Write ``path`` atomically: yield a handle to a sibling temp file,
    fsync it, and :func:`os.replace` it over the destination on clean
    exit.  On any exception the temp file is removed and the
    destination is left untouched."""
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        mode = "wb" if binary else "w"
        with os.fdopen(
            fd, mode, encoding=None if binary else "utf-8"
        ) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
