"""Durable file I/O for analysis artifacts.

Everything the tower writes to disk — crash repros, scheduling hints,
the cross-run analysis store — must survive the process dying at any
instruction: these files are read back by *later* runs, and a torn or
half-written artifact would either crash that run or (worse) silently
feed it garbage.  :func:`atomic_write` is the one way to write them:
the content lands in a temporary file in the destination directory and
is moved into place with :func:`os.replace`, which POSIX guarantees is
atomic on a single filesystem.  A reader therefore sees either the old
complete file or the new complete file, never a prefix.
"""

from __future__ import annotations

import os
import tempfile
import zlib
from contextlib import contextmanager
from typing import IO, Iterator, Optional, Union


@contextmanager
def atomic_write(
    path: Union[str, os.PathLike], binary: bool = False
) -> Iterator[IO]:
    """Write ``path`` atomically: yield a handle to a sibling temp file,
    fsync it, and :func:`os.replace` it over the destination on clean
    exit.  On any exception the temp file is removed and the
    destination is left untouched."""
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        mode = "wb" if binary else "w"
        with os.fdopen(
            fd, mode, encoding=None if binary else "utf-8"
        ) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def checksummed_write(path: Union[str, os.PathLike], data: bytes) -> dict:
    """Atomically write ``data`` to ``path`` and return its integrity
    record ``{"crc32": ..., "size": ...}`` for the caller to persist in
    a manifest.  Atomicity protects against *torn* writes; the checksum
    additionally detects post-write damage (bit rot, a partial restore,
    an editor or test poking the file) when the reader verifies it with
    :func:`read_checksummed`."""
    record = {"crc32": zlib.crc32(data), "size": len(data)}
    with atomic_write(path, binary=True) as handle:
        handle.write(data)
    return record


def read_checksummed(
    path: Union[str, os.PathLike], record: dict
) -> Optional[bytes]:
    """Read ``path`` and verify it against a :func:`checksummed_write`
    record.  Returns the content, or ``None`` on any mismatch or read
    failure — the caller decides whether to fall back to an older
    generation or start cold; this layer never raises."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        return None
    try:
        if len(data) != record["size"] or zlib.crc32(data) != record["crc32"]:
            return None
    except (KeyError, TypeError):
        return None
    return data
