"""Chaos harness: drive a live ``repro serve`` daemon through faults.

The campaign throws a seeded, weighted mix of hostile inputs at a daemon —
malformed and oversized requests, slow-loris stalls, socket resets, solver
faults injected into isolated workers (including ``crash`` exceptions and
``die`` SIGKILLs), flood bursts past the admission queue, store corruption
between requests, SIGKILLs aimed at pooled workers both idle and
mid-request, even SIGKILLing the daemon itself — and checks the
contract the serving layer promises:

* the daemon never dies to a request (only the explicit ``daemon_kill`` op
  takes it down, and the harness restarts it);
* every reply is well-formed JSON with a terminal ``status``;
* degraded answers stay sound (a budget-starved analyze may report less,
  never garbage);
* after the dust settles, a fresh analyze against the survivor is
  bitwise-identical to a clean one-shot ``repro analyze`` of the same
  source.

Run it as ``repro chaos --faults 200`` (or ``python tools/chaos.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.serve import ClientError, TERMINAL_STATUSES, request, request_with_retry

def default_source() -> str:
    """A staircase corpus with memoizable symbolic blocks: enough solver
    traffic for injected faults to land, cheap enough to analyze dozens
    of times in one campaign."""
    from repro.mixy.corpus_vsftpd import parallel_vsftpd

    return parallel_vsftpd(depth=1)


DEFAULT_LANG = "mixy"

# Socket-level ops are cheap; analyze-level ops dominate wall-clock, so the
# menu leans protocol-heavy to fit a 200-fault campaign in CI time.
OP_WEIGHTS = [
    ("malformed_json", 14),
    ("non_object", 8),
    ("unknown_cmd", 8),
    ("bad_payload", 8),
    ("oversized", 6),
    ("truncated_bytes", 6),
    ("socket_reset", 6),
    ("slowloris", 4),
    ("analyze_ok", 8),
    ("inject_crash", 6),
    ("inject_die", 6),
    ("inject_timeout", 4),
    ("inject_error", 4),
    ("inject_bad_model", 4),
    ("deadline", 4),
    ("flood", 3),
    ("store_corrupt", 3),
    ("daemon_kill", 2),
    ("pool_kill_idle", 3),
    ("pool_kill_busy", 2),
]


@dataclass
class CampaignReport:
    """What happened, op by op, plus the verdicts that matter."""

    seed: int = 0
    faults: int = 0
    ops: dict = field(default_factory=dict)
    statuses: dict = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    daemon_restarts: int = 0
    final_match: Optional[bool] = None

    def count(self, op: str, status: str) -> None:
        self.ops[op] = self.ops.get(op, 0) + 1
        self.statuses[status] = self.statuses.get(status, 0) + 1

    def violate(self, message: str) -> None:
        self.violations.append(message)

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "faults": self.faults,
            "ops": dict(sorted(self.ops.items())),
            "statuses": dict(sorted(self.statuses.items())),
            "daemon_restarts": self.daemon_restarts,
            "violations": list(self.violations),
            "final_match": self.final_match,
        }


def _subprocess_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class ManagedDaemon:
    """A ``repro serve`` child the campaign owns, kills, and restarts."""

    def __init__(self, store_dir: str, crash_dir: str, read_deadline: float = 0.4):
        self.store_dir = store_dir
        self.crash_dir = crash_dir
        self.read_deadline = read_deadline
        self.proc: Optional[subprocess.Popen] = None
        self.address: Optional[str] = None

    def start(self) -> str:
        cmd = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--store",
            self.store_dir,
            "--crash-dir",
            self.crash_dir,
            "--queue-depth",
            "2",
            "--read-deadline",
            str(self.read_deadline),
            "--request-deadline",
            "30",
            "--checkpoint-secs",
            "2",
        ]
        self.proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=_subprocess_env(),
            text=True,
        )
        assert self.proc.stdout is not None
        line = self.proc.stdout.readline()
        marker = "listening on "
        if marker not in line:
            raise RuntimeError(f"daemon failed to start: {line!r}")
        self.address = line.split(marker, 1)[1].strip()
        return self.address

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def kill(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=20)

    def shutdown(self) -> None:
        if not self.alive():
            return
        try:
            request(self.address, {"cmd": "shutdown"}, timeout=20)
        except (ClientError, OSError):
            pass
        try:
            self.proc.wait(timeout=20)
        except subprocess.TimeoutExpired:
            self.kill()

    def host_port(self) -> Tuple[str, int]:
        spec = self.address
        if spec.startswith("tcp:"):
            spec = spec[len("tcp:"):]
        host, _, port = spec.rpartition(":")
        return host, int(port)


def one_shot_result(lang: str, source: str) -> dict:
    """The ground truth: a clean single-process CLI run of the corpus."""
    with tempfile.NamedTemporaryFile(
        "w", suffix=".src", delete=False, encoding="utf-8"
    ) as handle:
        handle.write(source)
        path = handle.name
    try:
        cmd = [sys.executable, "-m", "repro.cli", lang, path]
        if lang == "mixy":
            cmd += ["--jobs", "1"]
        proc = subprocess.run(
            cmd,
            capture_output=True,
            text=True,
            env=_subprocess_env(),
            timeout=300,
        )
    finally:
        os.unlink(path)
    if proc.returncode == 2:
        return {"exit": proc.returncode, "lines": proc.stderr.splitlines()}
    if lang != "mixy":
        return {"exit": proc.returncode, "lines": proc.stdout.splitlines()}
    # The one-shot mixy CLI appends a perf summary (timings, block/solver
    # counts) to the warning list; the daemon result carries only the
    # deterministic `N warning(s)` count. Normalize to the daemon shape.
    warnings = proc.stdout.splitlines()[:-1]
    return {
        "exit": proc.returncode,
        "lines": warnings + [f"{len(warnings)} warning(s)"],
    }


class ChaosCampaign:
    def __init__(
        self,
        address: Optional[str] = None,
        faults: int = 200,
        seed: int = 0,
        lang: str = DEFAULT_LANG,
        source: Optional[str] = None,
        quiet: bool = False,
    ):
        self.rng = random.Random(seed)
        self.faults = faults
        self.lang = lang
        self.source = source if source is not None else default_source()
        self.quiet = quiet
        self.report = CampaignReport(seed=seed, faults=faults)
        self.external_address = address
        self.daemon: Optional[ManagedDaemon] = None
        self._workdir: Optional[tempfile.TemporaryDirectory] = None
        self.baseline: Optional[dict] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> str:
        if self.external_address is not None:
            return self.external_address
        return self.daemon.address

    @property
    def owns_daemon(self) -> bool:
        return self.external_address is None

    def _say(self, message: str) -> None:
        if not self.quiet:
            print(f"chaos: {message}", flush=True)

    def run(self) -> CampaignReport:
        self._say(f"baseline one-shot analyze ({self.lang})")
        self.baseline = one_shot_result(self.lang, self.source)
        if self.owns_daemon:
            self._workdir = tempfile.TemporaryDirectory(prefix="repro-chaos-")
            root = self._workdir.name
            self.daemon = ManagedDaemon(
                store_dir=os.path.join(root, "store"),
                crash_dir=os.path.join(root, "crashes"),
            )
            self.daemon.start()
            self._say(f"daemon up at {self.daemon.address}")
        try:
            self._campaign()
            self._final_check()
        finally:
            if self.owns_daemon:
                self.daemon.shutdown()
                self._workdir.cleanup()
        return self.report

    def _campaign(self) -> None:
        menu = [op for op, _ in OP_WEIGHTS]
        weights = [w for _, w in OP_WEIGHTS]
        for i in range(self.faults):
            op = self.rng.choices(menu, weights=weights, k=1)[0]
            if not self.owns_daemon and op in (
                "store_corrupt",
                "daemon_kill",
                "pool_kill_idle",
                "pool_kill_busy",
            ):
                # Can't reach an external daemon's disk or signal its
                # worker processes; stay hostile at the protocol layer.
                op = "malformed_json"
            getattr(self, f"_op_{op}")()
            if self.owns_daemon and not self.daemon.alive():
                if op != "daemon_kill":
                    self.report.violate(
                        f"daemon died to op {op!r} at fault #{i + 1}"
                    )
                self.daemon.start()
                self.report.daemon_restarts += 1
            if not self.quiet and (i + 1) % 25 == 0:
                self._say(f"{i + 1}/{self.faults} faults delivered")

    # -- plumbing ----------------------------------------------------------

    def _raw_exchange(self, blob: bytes, read_reply: bool = True) -> Optional[dict]:
        """Ship raw bytes down a fresh socket; return the parsed reply."""
        host, port = (
            self.daemon.host_port()
            if self.owns_daemon
            else _parse_address(self.external_address)
        )
        try:
            with socket.create_connection((host, port), timeout=20) as sock:
                sock.sendall(blob)
                if not read_reply:
                    return None
                sock.settimeout(20)
                data = b""
                while not data.endswith(b"\n"):
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    data += chunk
        except OSError as error:
            self.report.violate(f"raw exchange failed at the socket layer: {error}")
            return None
        if not data:
            return None
        try:
            reply = json.loads(data.decode("utf-8", errors="replace"))
        except json.JSONDecodeError:
            self.report.violate(f"daemon sent non-JSON reply: {data[:80]!r}")
            return None
        if not isinstance(reply, dict):
            self.report.violate(f"daemon sent non-object reply: {reply!r}")
            return None
        return reply

    def _expect_status(self, op: str, reply: Optional[dict], *allowed: str) -> None:
        if reply is None:
            self.report.count(op, "no_reply")
            self.report.violate(f"op {op!r} got no reply at all")
            return
        status = reply.get("status")
        if status not in TERMINAL_STATUSES:
            self.report.violate(
                f"op {op!r} reply has non-terminal status {status!r}"
            )
            self.report.count(op, "bad_status")
            return
        self.report.count(op, status)
        if allowed and status not in allowed:
            self.report.violate(
                f"op {op!r} expected status in {allowed}, got {status!r}: "
                f"{reply.get('error')!r}"
            )

    def _analyze(self, options: dict, timeout: float = 120.0) -> Optional[dict]:
        payload = {
            "cmd": "analyze",
            "lang": self.lang,
            "source": self.source,
            "options": options,
        }
        try:
            return request_with_retry(
                self.address, payload, timeout=timeout, retries=4, rng=self.rng
            )
        except (ClientError, OSError) as error:
            self.report.violate(f"analyze request failed outright: {error}")
            return None

    # -- the op menu -------------------------------------------------------

    def _op_malformed_json(self) -> None:
        garbage = self.rng.choice(
            [b"{not json]\n", b"\x00\xff\xfe garbage\n", b'{"cmd": \n', b"}{\n"]
        )
        self._expect_status(
            "malformed_json", self._raw_exchange(garbage), "protocol_error"
        )

    def _op_non_object(self) -> None:
        blob = self.rng.choice([b"[1, 2, 3]\n", b'"analyze"\n', b"42\n", b"null\n"])
        self._expect_status("non_object", self._raw_exchange(blob), "protocol_error")

    def _op_unknown_cmd(self) -> None:
        blob = json.dumps({"cmd": "frobnicate", "x": 1}).encode() + b"\n"
        self._expect_status("unknown_cmd", self._raw_exchange(blob), "protocol_error")

    def _op_bad_payload(self) -> None:
        blob = json.dumps(
            self.rng.choice(
                [
                    {"cmd": "analyze", "lang": "mixy", "source": 42},
                    {"cmd": "analyze", "lang": "mixy", "source": "x", "options": []},
                    {"cmd": "analyze", "lang": "cobol", "source": "x"},
                    {"cmd": "analyze"},
                ]
            )
        ).encode() + b"\n"
        self._expect_status(
            "bad_payload", self._raw_exchange(blob), "protocol_error", "error"
        )

    def _op_oversized(self) -> None:
        # Default cap is 4MiB; the chaos daemon keeps it, so 5MiB trips it.
        blob = b'{"cmd": "ping", "pad": "' + b"x" * (5 * 1024 * 1024) + b'"}\n'
        self._expect_status("oversized", self._raw_exchange(blob), "protocol_error")

    def _op_truncated_bytes(self) -> None:
        # Half a request then FIN: the daemon should just drop the
        # connection (no newline ever arrives) without dying.
        self._raw_exchange(b'{"cmd": "analyze", "lang"', read_reply=False)
        self.report.count("truncated_bytes", "ok" if self._ping() else "no_reply")

    def _op_socket_reset(self) -> None:
        host, port = (
            self.daemon.host_port()
            if self.owns_daemon
            else _parse_address(self.external_address)
        )
        try:
            sock = socket.create_connection((host, port), timeout=20)
            sock.sendall(b'{"cmd": "stats"}\n')
            # SO_LINGER 0 makes close() send RST instead of FIN.
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            sock.close()
        except OSError:
            pass
        self.report.count("socket_reset", "ok" if self._ping() else "no_reply")

    def _op_slowloris(self) -> None:
        # Dribble a request slower than the read deadline; the daemon must
        # cut us off rather than hold the connection hostage.
        host, port = (
            self.daemon.host_port()
            if self.owns_daemon
            else _parse_address(self.external_address)
        )
        stall = (self.daemon.read_deadline if self.owns_daemon else 1.0) + 0.3
        try:
            with socket.create_connection((host, port), timeout=20) as sock:
                sock.sendall(b'{"cmd": "pi')
                time.sleep(stall)
                sock.settimeout(20)
                data = b""
                try:
                    while not data.endswith(b"\n"):
                        chunk = sock.recv(65536)
                        if not chunk:
                            break
                        data += chunk
                except OSError:
                    pass
        except OSError:
            data = b""
        if data:
            try:
                reply = json.loads(data.decode("utf-8", errors="replace"))
                status = reply.get("status") if isinstance(reply, dict) else None
            except json.JSONDecodeError:
                status = None
            if status != "protocol_error":
                self.report.violate(
                    f"slowloris expected protocol_error or a cut "
                    f"connection, got {data[:80]!r}"
                )
            self.report.count("slowloris", status or "bad_status")
        else:
            # Connection cut with no reply is acceptable for a stalled
            # half-request too; what matters is the daemon survives.
            self.report.count("slowloris", "ok" if self._ping() else "no_reply")

    def _op_analyze_ok(self) -> None:
        reply = self._analyze({})
        self._expect_status("analyze_ok", reply, "ok")
        if reply and reply.get("status") == "ok":
            self._check_result(reply, "analyze_ok")

    def _inject(self, op: str, kind: str, *allowed: str) -> None:
        query = self.rng.randrange(1, 6)
        reply = self._analyze({"inject_fault": [f"{query}:{kind}"]})
        self._expect_status(op, reply, *allowed)

    # For every inject op, "ok" is also legal: once the daemon's cache is
    # warm an analyze may make fewer solver queries than the fault index,
    # so the fault never fires. What matters is that firing faults produce
    # sound terminal replies and never kill the daemon.

    def _op_inject_crash(self) -> None:
        # An isolated worker dies mid-analysis -> degraded or error; a
        # --no-isolate daemon catches the exception in-process -> error.
        self._inject("inject_crash", "crash", "ok", "degraded", "error")

    def _op_inject_die(self) -> None:
        self._inject("inject_die", "die", "ok", "degraded", "error")

    def _op_inject_timeout(self) -> None:
        # Solver timeouts degrade to UNKNOWN answers but the run completes.
        self._inject("inject_timeout", "timeout", "ok")

    def _op_inject_error(self) -> None:
        self._inject("inject_error", "error", "ok", "degraded", "error")

    def _op_inject_bad_model(self) -> None:
        self._inject("inject_bad_model", "bad_model", "ok", "degraded", "error")

    def _op_deadline(self) -> None:
        # A starvation budget degrades soundly: the analysis stays on the
        # conservative side (it may report MORE warnings than the refined
        # baseline, never garbage) and says why with budget diagnostics.
        reply = self._analyze({"deadline": 0.0001})
        self._expect_status("deadline", reply, "ok", "degraded")
        if reply and reply.get("status") == "ok":
            result = reply.get("result") or {}
            lines = result.get("lines") or []
            if result.get("exit") not in (0, 1):
                self.report.violate(
                    f"deadline-starved analyze blew up (exit "
                    f"{result.get('exit')!r}): {lines[:3]}"
                )
            elif lines != self.baseline["lines"] and not any(
                "budget" in line.lower() for line in lines
            ):
                self.report.violate(
                    "deadline-starved analyze diverged from baseline "
                    f"without any budget diagnostic: {lines[:3]}"
                )

    def _op_flood(self) -> None:
        # More concurrent clients than queue slots: some must be shed with
        # 'busy', every one must land a terminal reply after retries.
        results: List[Optional[dict]] = [None] * 4

        payload = {
            "cmd": "analyze",
            "lang": self.lang,
            "source": self.source,
            "options": {},
        }

        seeds = [self.rng.randrange(1 << 30) for _ in results]

        def worker(slot: int) -> None:
            # Retry-until-success: 'busy' is an invitation to come back,
            # and early in a daemon's life the retry_after_ms hint can be
            # optimistic, so a fixed retry count is not enough. Only a
            # client that never lands a reply within the window is a
            # violation.
            rng = random.Random(seeds[slot])
            give_up = time.monotonic() + 150
            while time.monotonic() < give_up:
                try:
                    reply = request_with_retry(
                        self.address, payload, timeout=120, retries=4, rng=rng
                    )
                except (ClientError, OSError):
                    time.sleep(0.2 + rng.random())
                    continue
                results[slot] = reply
                if reply.get("status") != "busy":
                    return
                time.sleep(0.2 + rng.random())
            self.report.violate(
                f"flood client {slot} never got through within 150s"
            )

        threads = [
            threading.Thread(target=worker, args=(slot,), daemon=True)
            for slot in range(len(results))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        for reply in results:
            self._expect_status("flood", reply, "ok")

    def _op_store_corrupt(self) -> None:
        # Flip a byte in a random persisted section between requests; the
        # two-generation store must roll back or start cold, not crash.
        store_dir = self.daemon.store_dir
        victims = []
        if os.path.isdir(store_dir):
            victims = [
                os.path.join(store_dir, name)
                for name in os.listdir(store_dir)
                if name.endswith(".pkl")
            ]
        if victims:
            path = self.rng.choice(victims)
            try:
                with open(path, "r+b") as handle:
                    data = handle.read()
                    if data:
                        pos = self.rng.randrange(len(data))
                        handle.seek(pos)
                        handle.write(bytes([data[pos] ^ 0xFF]))
            except OSError:
                pass
        reply = self._analyze({})
        self._expect_status("store_corrupt", reply, "ok")
        if reply and reply.get("status") == "ok":
            self._check_result(reply, "store_corrupt")

    def _pool_workers(self) -> List[dict]:
        """The daemon's live pooled workers (pid/epoch/served/busy), or
        ``[]`` when the daemon runs without a pool."""
        try:
            reply = request_with_retry(
                self.address, {"cmd": "stats"}, timeout=20, retries=3,
                rng=self.rng,
            )
        except (ClientError, OSError):
            return []
        pool = (reply.get("stats") or {}).get("pool") or {}
        return [
            worker
            for worker in pool.get("workers", [])
            if isinstance(worker.get("pid"), int)
        ]

    def _op_pool_kill_idle(self) -> None:
        # SIGKILL a pooled worker *between* requests: the pool must reap
        # the corpse at the next acquire and replace it with a fresh
        # fork — the client-visible reply stays clean 'ok' and identical
        # to the baseline (no degraded, no epoch corruption).
        workers = self._pool_workers()
        if not workers:
            # Pool not spawned yet (it forks lazily at the first
            # analyze) or the daemon runs fork-per-request/in-process:
            # warm it up and see if a pool appears.
            reply = self._analyze({})
            self._expect_status("pool_kill_idle", reply, "ok")
            workers = self._pool_workers()
            if not workers:
                return  # non-pooled daemon: nothing to aim at
        victim = self.rng.choice(workers)["pid"]
        try:
            os.kill(victim, signal.SIGKILL)
        except OSError:
            pass  # already recycled underneath us
        reply = self._analyze({})
        self._expect_status("pool_kill_idle", reply, "ok")
        if reply and reply.get("status") == "ok":
            self._check_result(reply, "pool_kill_idle")
        survivors = {worker["pid"] for worker in self._pool_workers()}
        if victim in survivors:
            self.report.violate(
                f"pool_kill_idle: murdered worker {victim} still listed "
                "in the pool after a served request"
            )

    def _op_pool_kill_busy(self) -> None:
        # SIGKILL a pooled worker *mid-request*: that request may come
        # back degraded (with a crash repro) or ok (the kill raced its
        # completion), the daemon must survive, and the next analyze
        # must be clean and identical on a replacement worker.
        box: dict = {}

        def run() -> None:
            box["reply"] = self._analyze({})

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        victim = None
        give_up = time.monotonic() + 10
        while victim is None and thread.is_alive() and time.monotonic() < give_up:
            busy = [w["pid"] for w in self._pool_workers() if w.get("busy")]
            if busy:
                victim = self.rng.choice(busy)
                break
            time.sleep(0.02)
        if victim is not None:
            try:
                os.kill(victim, signal.SIGKILL)
            except OSError:
                pass
        thread.join(timeout=150)
        reply = box.get("reply")
        if thread.is_alive():
            self.report.violate(
                "pool_kill_busy: analyze never completed after the kill"
            )
            return
        if victim is None:
            # Non-pooled daemon or the request finished before we could
            # aim; the reply must still be clean.
            self._expect_status("pool_kill_busy", reply, "ok")
            return
        self._expect_status("pool_kill_busy", reply, "ok", "degraded")
        if reply and reply.get("status") == "ok":
            self._check_result(reply, "pool_kill_busy")
        follow = self._analyze({})
        if follow is None or follow.get("status") != "ok":
            self.report.violate(
                "pool_kill_busy: follow-up analyze after a mid-request "
                f"worker kill was not ok: {follow and follow.get('status')!r}"
            )
        else:
            self._check_result(follow, "pool_kill_busy")

    def _op_daemon_kill(self) -> None:
        self.daemon.proc.send_signal(signal.SIGKILL)
        try:
            self.daemon.proc.wait(timeout=20)
        except subprocess.TimeoutExpired:
            pass
        self.report.count("daemon_kill", "ok")
        # _campaign notices the death and restarts; the store must come
        # back from its last durable generation.

    # -- verdicts ----------------------------------------------------------

    def _ping(self) -> bool:
        try:
            reply = request_with_retry(
                self.address, {"cmd": "ping"}, timeout=20, retries=3, rng=self.rng
            )
        except (ClientError, OSError):
            return False
        return bool(reply.get("ok"))

    def _check_result(self, reply: dict, op: str) -> None:
        result = reply.get("result") or {}
        if result.get("lines") != self.baseline["lines"] or result.get(
            "exit"
        ) != self.baseline["exit"]:
            self.report.violate(
                f"op {op!r} analyze diverged from the one-shot baseline"
            )

    def _final_check(self) -> None:
        self._say("post-campaign invariant: analyze == fresh one-shot")
        reply = self._analyze({})
        ok = (
            reply is not None
            and reply.get("status") == "ok"
            and (reply.get("result") or {}).get("lines") == self.baseline["lines"]
            and (reply.get("result") or {}).get("exit") == self.baseline["exit"]
        )
        self.report.final_match = bool(ok)
        if not ok:
            self.report.violate(
                "post-campaign analyze did not match the fresh one-shot baseline"
            )


def _parse_address(spec: str) -> Tuple[str, int]:
    if spec.startswith("tcp:"):
        spec = spec[len("tcp:"):]
    host, _, port = spec.rpartition(":")
    return host, int(port)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="fault-injection campaign against a repro serve daemon",
    )
    parser.add_argument(
        "--faults",
        type=int,
        default=200,
        metavar="N",
        help="how many hostile operations to deliver (default 200)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign RNG seed (default 0)"
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="ADDR",
        help="attack an already-running daemon at ADDR (unix:PATH or "
        "tcp:HOST:PORT) instead of launching one; disk-level ops "
        "(store corruption, daemon kill) are skipped",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        metavar="FILE",
        help="analyze this source file instead of the built-in staircase",
    )
    parser.add_argument(
        "--lang", choices=["mix", "mixy"], default=DEFAULT_LANG
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    source = None
    if args.corpus:
        with open(args.corpus, encoding="utf-8") as handle:
            source = handle.read()

    campaign = ChaosCampaign(
        address=args.connect,
        faults=args.faults,
        seed=args.seed,
        lang=args.lang,
        source=source,
        quiet=args.quiet or args.json,
    )
    report = campaign.run()

    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(f"chaos: {report.faults} faults, seed {report.seed}")
        for op, count in sorted(report.ops.items()):
            print(f"  {op:<16} x{count}")
        print(f"  statuses: {json.dumps(report.statuses, sort_keys=True)}")
        print(f"  daemon restarts: {report.daemon_restarts}")
        print(
            "  final analyze matches one-shot baseline: "
            f"{report.final_match}"
        )
        if report.violations:
            print(f"chaos: {len(report.violations)} VIOLATIONS:")
            for violation in report.violations:
                print(f"  - {violation}")
        else:
            print("chaos: no violations")
    return 0 if not report.violations else 1


if __name__ == "__main__":
    raise SystemExit(main())
