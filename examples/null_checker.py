#!/usr/bin/env python3
"""MIXY: finding null-pointer errors in C by mixing qualifier inference
with symbolic execution (paper Section 4).

This walks the paper's own worked example — the ``free``/``id`` snippet
whose qualifier constraints force ``null = nonnull`` — then shows how a
``MIX(symbolic)`` annotation removes a false positive that flow- and
path-insensitive inference cannot avoid.

Run:  python examples/null_checker.py
"""

from repro.mixy import Mixy


def main() -> None:
    # --- The paper's Section 4 example: a real error -------------------
    buggy = """
    void free(int *nonnull x);
    int *id(int *p) { return p; }
    int main(void) {
      int *x = NULL;
      int *y = id(x);
      free(y);
      return 0;
    }
    """
    warnings = Mixy(buggy).run(entry="typed", entry_function="main")
    print("paper's free/id example (a real NULL flow):")
    for w in warnings:
        print("  ", w)
    assert len(warnings) == 1

    # --- A false positive removed by a symbolic block ------------------
    # sockaddr_clear frees its target only under a null check and only
    # *before* nulling it; flow/path-insensitive inference cannot see
    # either fact.
    template = """
    struct sockaddr {{ int family; }};
    void sysutil_free(void *nonnull p_ptr) MIX(typed);
    void sockaddr_clear(struct sockaddr **p_sock) {annotation} {{
      if (*p_sock != NULL) {{
        sysutil_free(*p_sock);
        *p_sock = NULL;
      }}
    }}
    int main(void) {{
      struct sockaddr *p = (struct sockaddr *) malloc(sizeof(struct sockaddr));
      sockaddr_clear(&p);
      return 0;
    }}
    """
    plain = Mixy(template.format(annotation="")).run()
    print("\nsockaddr_clear, pure qualifier inference:")
    for w in plain:
        print("  ", str(w)[:120])
    print(f"  -> {len(plain)} false positive(s)")

    mixed = Mixy(template.format(annotation="MIX(symbolic)")).run()
    print("\nsockaddr_clear with MIX(symbolic):")
    print(f"  -> {len(mixed)} warning(s) — the symbolic executor proves the")
    print("     argument non-null at the sysutil_free call")
    assert plain and not mixed


if __name__ == "__main__":
    main()
