#!/usr/bin/env python3
"""Quickstart: analyzing a program with MIX.

MIX mixes two off-the-shelf analyses: a type checker and a symbolic
executor.  You mark regions of the program with typed blocks
``{t ... t}`` (analyzed by the type checker) and symbolic blocks
``{s ... s}`` (analyzed by the symbolic executor); at block boundaries
the *mix rules* translate information between the two.

Run:  python examples/quickstart.py
"""

from repro.core import analyze_source
from repro.lang import parse
from repro.typecheck import TypeError_, check_expr


def main() -> None:
    # Pure type checking is path-insensitive: it checks code that can
    # never run.  This program always evaluates to 5, but the dead else
    # branch contains a type error.
    program = 'if true then 5 else "foo" + 3'
    print(f"program: {program}")
    try:
        check_expr(parse(program))
        print("pure type checking: accepted")
    except TypeError_ as error:
        print(f"pure type checking: REJECTED ({error})")

    # MIX fix (the paper's first Section 2 idiom): wrap the conditional in
    # a symbolic block so only feasible branches are checked, and wrap the
    # branch bodies in typed blocks so they are still typed cheaply.
    mixed = '{s if true then {t 5 t} else {t "foo" + 3 t} s}'
    print(f"\nmixed:   {mixed}")
    report = analyze_source(mixed)
    print(f"MIX: {report}")
    assert report.ok

    # The analysis also works with unknown inputs: declare their types in
    # an environment and MIX introduces symbolic values at the boundary.
    from repro.typecheck import TypeEnv
    from repro.typecheck.types import INT

    refined = """
    {s
      if 0 < x then {t x + 1 t}
      else if x = 0 then {t 0 t}
      else {t 0 - x t}
    s}
    """
    report = analyze_source(refined, env=TypeEnv({"x": INT}))
    print(f"\nsign-refinement over unknown x: {report}")
    print(f"paths explored: {report.stats['paths_explored']}")
    assert report.ok


if __name__ == "__main__":
    main()
