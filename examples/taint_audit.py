#!/usr/bin/env python3
"""A second qualifier client: taint tracking (the paper's conclusion
promises MIXY extensions "to check other properties").

The qualifier engine of `repro.mixy.qual` is a generic source-to-sink
flow analysis; `repro.mixy.taint` instantiates it with tainted/untainted
poles instead of null/nonnull.  Everything else — assignments, calls,
struct fields, globals, function pointers, the Andersen call graph — is
shared with the null checker.

Run:  python examples/taint_audit.py
"""

from repro.mixy.c import parse_program
from repro.mixy.pointers import PointsTo
from repro.mixy.taint import TaintSpec, analyze_taint

SOURCE = """
char *read_user_input(void);
char *sanitize(char *raw);
int exec_query(char *sql);

struct request { char *body; int size; };

void fill_request(struct request *r) {
  r->body = read_user_input();
}

int handle_unsafe(struct request *r) {
  return exec_query(r->body);          /* tainted -> sink: warning */
}

int handle_safe(struct request *r) {
  return exec_query(sanitize(r->body)); /* sanitized: clean */
}

int audit_log(void) {
  return exec_query("SELECT * FROM audit"); /* constant: clean */
}
"""

SPEC = TaintSpec(
    sources=frozenset({"read_user_input"}),
    sinks={"exec_query": (0,)},
)


def main() -> None:
    program = parse_program(SOURCE)
    warnings = analyze_taint(program, SPEC, callees_of=PointsTo(program).callees)
    print(f"{len(warnings)} tainted flow(s) found:")
    for warning in warnings:
        print("  ", warning)
    assert len(warnings) == 1
    assert "request.body" in str(warnings[0])  # the conduit field


if __name__ == "__main__":
    main()
