#!/usr/bin/env python3
"""Reproduce the paper's evaluation (Section 4.5): the four vsftpd case
studies, before and after adding the paper's MIX annotations, plus the
cost-versus-blocks sweep of Section 4.6.

Run:  python examples/vsftpd_audit.py
"""

from repro.mixy import Mixy
from repro.mixy.corpus import CASES, combined_program


def main() -> None:
    print("Case studies (paper Section 4.5)")
    print("=" * 72)
    for name in sorted(CASES):
        case = CASES[name]
        plain = Mixy(case.source(False)).run()
        mixy = Mixy(case.source(True))
        mixed = mixy.run()
        print(f"\n{name}: {case.title}")
        print(f"  pure inference : {len(plain)} warning(s)")
        for w in plain:
            print(f"      {str(w)[:110]}")
        print(
            f"  with MIX blocks: {len(mixed)} warning(s)   "
            f"(symbolic blocks run: {mixy.stats['symbolic_blocks_run']}, "
            f"solver calls: {mixy.executor.stats['solver_calls']})"
        )

    print("\nCost versus number of symbolic blocks (paper Section 4.6)")
    print("=" * 72)
    print(f"{'blocks':>7} {'warnings':>9} {'seconds':>9} {'solver calls':>13}")
    for n in (0, 1, 2):
        mixy = Mixy(combined_program(n))
        warnings = mixy.run()
        print(
            f"{n:>7} {len(warnings):>9} "
            f"{mixy.stats['analysis_seconds']:>9.4f} "
            f"{mixy.executor.stats['solver_calls']:>13}"
        )
    print(
        "\npaper's shape: each added block costs more analysis time and\n"
        "removes one false positive (<1s / 5-25s / ~60s on their testbed)."
    )


if __name__ == "__main__":
    main()
