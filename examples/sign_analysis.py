#!/usr/bin/env python3
"""Local refinements of data with symbolic execution (paper Section 2,
"Local Refinements of Data") — and a look under the hood of the
symbolic executor's fork/defer design choice (Section 3.1).

Run:  python examples/sign_analysis.py
"""

from repro import smt
from repro.core import MixConfig, analyze_source
from repro.lang import parse
from repro.symexec import IfStrategy, SymConfig, SymEnv, SymExecutor
from repro.symexec.values import fresh_of_type
from repro.typecheck import TypeEnv
from repro.typecheck.types import INT


def main() -> None:
    # The paper's sign-refinement idiom, with the actual sign-qualifier
    # system of §2 ("pos int", "neg int", "zero int", "unknown int") and a
    # real client property: division-by-zero freedom.
    from repro.quals import Sign, SignEnv, analyze_signs
    from repro.quals.checker import int_q

    program = """
    {s
      if 0 < x then {t 10 / x t}
      else if x = 0 then {t 0 t}
      else {t 10 / x t}
    s}
    """
    env = SignEnv({"x": int_q(Sign.UNKNOWN)})
    print("sign-qualified MIX:", analyze_signs(program, env))
    print(
        "pure sign checking:",
        analyze_signs("if x = 0 then 0 else 10 / x", env),
        " (path-insensitive false positive)",
    )

    # The block's own sign survives the boundary: d is provably positive,
    # so the enclosing typed code may divide by it.
    escape = "let d = {s if 0 < x then x else 1 s} in 100 / d"
    print("sign escapes the block:", analyze_signs(escape, env))

    # The plain (unqualified) MIX analysis of the same shape:
    program = """
    {s
      if 0 < x then {t x + 1 t}
      else if x = 0 then {t 0 t}
      else {t 0 - x t}
    s}
    """
    report = analyze_source(program, env=TypeEnv({"x": INT}))
    print("\nplain MIX on the same shape:", report)

    # Peek at the machinery: run the executor directly and inspect each
    # path's guard, then verify the TSymBlock exhaustiveness condition —
    # the disjunction of path conditions is a tautology.
    executor = SymExecutor()
    x, _ = fresh_of_type(INT, executor.names)
    body = parse("if 0 < x then 1 else if x = 0 then 0 else 0 - 1")
    outcomes = executor.execute_all(body, SymEnv({"x": x}))
    print("\nexplored paths:")
    for out in outcomes:
        print(f"  guard: {out.state.guard}   value: {out.value}")
    guards = [o.state.guard for o in outcomes]
    print("exhaustive(g1, ..., gn)?", smt.is_valid(smt.or_(*guards)))

    # Fork vs defer (the paper's "Deferral Versus Execution" choice):
    # the same conditional either forks into 2^k paths or builds one
    # symbolic value with ite inside.
    k = 4
    branches = " + ".join(f"(if 0 < x{i} then 1 else 0)" for i in range(k))
    env = TypeEnv({f"x{i}": INT for i in range(k)})
    for strategy in (IfStrategy.FORK, IfStrategy.DEFER):
        config = MixConfig(sym=SymConfig(if_strategy=strategy))
        report = analyze_source("{s " + branches + " s}", env=env, config=config)
        print(
            f"\n{strategy.value:>5}: paths explored = "
            f"{report.stats['paths_explored']}, merges = {report.stats['sym_merges']}"
        )


if __name__ == "__main__":
    main()
