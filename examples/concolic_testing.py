#!/usr/bin/env python3
"""Concolic test generation: the DART/CUTE style the paper situates its
executor against (§3.1).

The same symbolic-execution rules, driven by concrete runs: each run
follows one path, the solver negates a branch decision to get fresh
inputs, and deep, guard-protected bugs fall out with witnesses.

Run:  python examples/concolic_testing.py
"""

from repro.lang import parse
from repro.symexec import ConcolicDriver
from repro.typecheck.types import BOOL, INT


def main() -> None:
    # A bug hiding behind an equality guard: random testing has a ~1 in
    # 2^64 chance; concolic derives x = 1234 from the branch condition.
    source = """
    if x = 1234 then
      (if p then 1 + true else 0)
    else
      (if x < 0 then 0 - x else x)
    """
    driver = ConcolicDriver(parse(source), {"x": INT, "p": BOOL})
    report = driver.explore()
    print(f"runs: {len(report.runs)}   distinct paths: {report.paths_covered}")
    for run in report.runs:
        status = "ok" if run.ok else f"FAILS: {run.outcome.error}"
        decisions = " & ".join(str(d) for d in run.decisions) or "(no branches)"
        print(f"  inputs {run.inputs}  path [{decisions}]  {status}")
    print("\nfailures with witnesses:")
    for inputs, message in report.failures:
        print(f"  {inputs} -> {message}")
    assert any(inputs["x"] == 1234 for inputs, _ in report.failures)

    # Loops: each new input extends the path one iteration further.
    loop = "let r = ref 0 in while !r < n do r := !r + 1 done; !r"
    report = ConcolicDriver(parse(loop), {"n": INT}, max_runs=5).explore()
    print(f"\nloop exploration: inputs tried = {[r.inputs['n'] for r in report.runs]}")


if __name__ == "__main__":
    main()
