#!/usr/bin/env python3
"""Automatic block placement — MIX as an intermediate language.

The paper leaves block placement to the programmer but envisions "an
automated refinement algorithm [that] could heuristically insert blocks
as needed" (§1, §4.6).  This example runs that loop in both directions:

- a type-checking false positive refined away with a symbolic block;
- symbolic execution rescued from an unknown function, a nonlinear
  operation, and an unbounded loop with typed blocks.

Run:  python examples/auto_refine.py
"""

from repro.core import MixConfig, auto_place_blocks
from repro.lang import parse
from repro.symexec import SymConfig
from repro.typecheck import TypeEnv
from repro.typecheck.types import FunType, INT


def show(title, result):
    print(f"\n--- {title}")
    for i, step in enumerate(result.steps, 1):
        print(f"  step {i}: {step}")
    print(f"  verdict: {'accepted: ' + str(result.report.type) if result.ok else result.report}")
    print(f"  annotated: {result.annotated_source}")


def main() -> None:
    # Typed entry: the dead-branch false positive.
    program = 'if true then 5 else "foo" + 3'
    print(f"program: {program}")
    show("refining a typed false positive", auto_place_blocks(parse(program)))

    # Symbolic entry: execution stuck on an unknown function and a
    # nonlinear operation — refined with typed blocks (§2, "Helping
    # Symbolic Execution").
    env = TypeEnv({"f": FunType(INT, INT), "z": INT, "n": INT})
    stuck = "f 1 + z * z"
    print(f"\nprogram: {stuck}")
    show(
        "refining stuck symbolic execution",
        auto_place_blocks(parse(stuck), env, entry="symbolic"),
    )

    loop = "let i = ref 0 in while !i < n do i := !i + 1 done; !i"
    print(f"\nprogram: {loop}")
    show(
        "refining an unbounded loop",
        auto_place_blocks(
            parse(loop),
            env,
            entry="symbolic",
            config=MixConfig(sym=SymConfig(max_loop_unroll=4)),
        ),
    )

    # A genuine (reachable) error cannot be refined away:
    broken = '"foo" + 3'
    result = auto_place_blocks(parse(broken))
    print(f"\nprogram: {broken}")
    print(f"  verdict: {result.report} (refinement correctly gives up)")


if __name__ == "__main__":
    main()
