#!/usr/bin/env python3
"""The introduction's motivating example: locally adding path
sensitivity to a path-insensitive analysis.

The paper opens with a program that forks and locks only when
``multithreaded`` is true.  A path-insensitive type-based analysis
conflates both configurations; wrapping the program in a symbolic block
makes the analysis explore each setting of ``multithreaded``
independently, while the bulk of the code stays cheaply type checked
inside typed blocks.

Run:  python examples/path_sensitivity.py
"""

from repro.core import analyze_source
from repro.typecheck import TypeEnv
from repro.typecheck.types import BOOL, INT


def main() -> None:
    program = """
    {s
      (if multithreaded then {t fork t} else {t 0 t});
      {t work1 t};
      (if multithreaded then {t lock t} else {t 0 t});
      {t work2 t};
      (if multithreaded then {t unlock t} else {t 0 t})
    s}
    """
    env = TypeEnv(
        {
            "multithreaded": BOOL,
            "fork": INT,
            "lock": INT,
            "unlock": INT,
            "work1": INT,
            "work2": INT,
        }
    )
    report = analyze_source(program, env=env)
    print("intro example:", report)
    print(
        "the type checker ran",
        report.stats["typed_blocks"],
        "times (once per typed block per feasible path) —",
        "\n'these block annotations effectively cause the type-based analysis",
        "to be run twice, once for each possible setting of multithreaded'",
    )
    assert report.ok

    # Flow sensitivity: a reference reused at two points in time.  The
    # symbolic executor distinguishes the two assignments; the typed block
    # in between is checked against the value's type at that point.
    reuse = "{s let v = ref 1 in {t !v + 1 t}; v := 2; !v s}"
    print("\nflow-sensitive reuse:", analyze_source(reuse))

    # Local initialization: the symbolic block tolerates the temporarily
    # ill-typed placeholder because the well-typed overwrite erases it
    # before any read (the paper's Overwrite-OK rule).
    init = "{s let v = ref 1 in v := 1 = 1; v := 7; {t !v + 1 t} s}"
    print("local init (ill-typed placeholder overwritten):", analyze_source(init))

    # Without the overwrite the ⊢ m ok check correctly rejects entry to
    # the typed block:
    broken = "{s let v = ref 1 in v := 1 = 1; {t !v + 1 t} s}"
    print("persisting ill-typed write:", analyze_source(broken))


if __name__ == "__main__":
    main()
