int main() {
  int x;
  x = symbolic();
  assume(x > 0);
  assume(x < 100);
  check(x * 2 < 200);
  return 0;
}
