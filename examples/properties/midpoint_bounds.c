int mid(int lo, int hi) {
  return lo + (hi - lo) / 2;
}

int main() {
  int lo; int hi;
  lo = symbolic();
  hi = symbolic();
  assume(lo >= 0);
  assume(hi >= lo);
  int m;
  m = mid(lo, hi);
  check(m >= lo && m <= hi);
  return 0;
}
