int main() {
  int n; int i; int total;
  n = symbolic();
  assume(n > 0);
  i = 0;
  total = 0;
  while (i < n) {
    total = total + 1;
    i = i + 1;
  }
  check(total == n);
  return 0;
}
