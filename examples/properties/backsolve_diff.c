int main() {
  int x; int y;
  x = symbolic();
  y = symbolic();
  check(!(x - y == 42));
  return 0;
}
